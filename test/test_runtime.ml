(* Concurrent runtime and workload driver. *)

module Runtime = Baton_runtime.Runtime
module Driver = Baton_runtime.Driver
module Latency = Baton_sim.Latency
module Metrics = Baton_sim.Metrics
module Json = Baton_obs.Json
module Rng = Baton_util.Rng
module Datagen = Baton_workload.Datagen
module Net = Baton.Net

let build ~seed n ~keys_per_node =
  let net = Baton.Network.build ~seed n in
  let gen = Datagen.uniform (Rng.create ((seed * 31) + 7)) in
  let keys = Datagen.take gen (keys_per_node * n) in
  Array.iter
    (fun k -> ignore (Baton.Update.insert net ~from:(Net.random_peer net) k))
    keys;
  (net, keys)

let test_sleep_and_clock () =
  let net, _ = build ~seed:11 4 ~keys_per_node:1 in
  let rt = Runtime.create net in
  let log = ref [] in
  Runtime.spawn rt
    (fun () ->
      Runtime.sleep 50.;
      log := ("a", Runtime.now rt) :: !log;
      Runtime.sleep 25.;
      log := ("b", Runtime.now rt) :: !log)
    ~on_done:(fun r -> Alcotest.(check bool) "ok" true (Result.is_ok r));
  Runtime.spawn rt
    (fun () ->
      Runtime.sleep 60.;
      log := ("c", Runtime.now rt) :: !log)
    ~on_done:(fun _ -> ());
  Runtime.run rt;
  Alcotest.(check (list (pair string (float 0.0))))
    "interleaved by virtual time"
    [ ("a", 50.); ("c", 60.); ("b", 75.) ]
    (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 75. (Runtime.now rt);
  Alcotest.(check int) "no live fibers" 0 (Runtime.live_fibers rt)

let test_both_overlaps () =
  let net, _ = build ~seed:11 4 ~keys_per_node:1 in
  let rt = Runtime.create net in
  let result = ref ("", 0) in
  Runtime.spawn rt
    (fun () ->
      Runtime.both
        (fun () ->
          Runtime.sleep 100.;
          "left")
        (fun () ->
          Runtime.sleep 150.;
          7))
    ~on_done:(function
      | Ok v -> result := v
      | Error e -> raise e);
  Runtime.run rt;
  Alcotest.(check (pair string int)) "both results" ("left", 7) !result;
  (* Concurrent children: total time is max(100, 150), not the sum. *)
  Alcotest.(check (float 0.0)) "critical path, not sum" 150. (Runtime.now rt)

let test_both_propagates_errors () =
  let net, _ = build ~seed:11 4 ~keys_per_node:1 in
  let rt = Runtime.create net in
  let got = ref None in
  Runtime.spawn rt
    (fun () ->
      Runtime.both
        (fun () -> Runtime.sleep 10.)
        (fun () ->
          Runtime.sleep 5.;
          failwith "boom"))
    ~on_done:(fun r -> got := Some r);
  Runtime.run rt;
  match !got with
  | Some (Error (Failure msg)) ->
    Alcotest.(check string) "child's exception" "boom" msg
  | _ -> Alcotest.fail "expected the child's exception"

let test_lock_fifo () =
  let net, _ = build ~seed:11 4 ~keys_per_node:1 in
  let rt = Runtime.create net in
  let lock = Runtime.Lock.create () in
  let order = ref [] and inside = ref false in
  let critical i =
    Runtime.Lock.with_lock lock (fun () ->
        Alcotest.(check bool) "mutual exclusion" false !inside;
        inside := true;
        order := i :: !order;
        Runtime.sleep 10.;
        inside := false)
  in
  for i = 1 to 3 do
    Runtime.spawn rt (fun () -> critical i) ~on_done:(fun _ -> ())
  done;
  Runtime.run rt;
  Alcotest.(check (list int)) "FIFO hand-off" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check bool) "released" false (Runtime.Lock.held lock)

(* The PR's acceptance bar: a range query fanning out over many peers
   finishes in strictly less virtual time than the serial sum of its
   hop latencies, while transmitting exactly the same messages. *)
let test_range_critical_path () =
  let n = 80 in
  let net, _ = build ~seed:42 n ~keys_per_node:5 in
  let lat = Latency.create ~seed:7 () in
  let from = Net.random_peer net in
  (* Center the query on a narrow range away from the domain edges and
     span ~8 peer widths each side, so the locate step lands in the
     middle and both directional sweeps have real work — the tree's
     dyadic range splits make naive lo/hi choices degenerate. *)
  let w = (Datagen.domain_hi - Datagen.domain_lo) / n in
  let target =
    Net.peers net
    |> List.filter (fun p ->
           p.Baton.Node.range.Baton.Range.lo >= Datagen.domain_lo + (8 * w)
           && p.Baton.Node.range.Baton.Range.hi <= Datagen.domain_hi - (8 * w))
    |> List.fold_left
         (fun best p ->
           let width q =
             q.Baton.Node.range.Baton.Range.hi - q.Baton.Node.range.Baton.Range.lo
           in
           match best with
           | Some b when width b <= width p -> best
           | _ -> Some p)
         None
    |> Option.get
  in
  let c =
    target.Baton.Node.range.Baton.Range.lo
    + ((target.Baton.Node.range.Baton.Range.hi
       - target.Baton.Node.range.Baton.Range.lo)
      / 2)
  in
  let lo = c - (8 * w) and hi = c + (8 * w) in
  let metrics = Net.metrics net in
  let cp = Metrics.checkpoint metrics in
  let serial_out, serial_ms =
    Latency.measure lat (Net.bus net) (fun () ->
        Baton.Search.range net ~from ~lo ~hi)
  in
  let serial_msgs = Metrics.since metrics cp in
  let rt = Runtime.create ~latency:lat net in
  let cp = Metrics.checkpoint metrics in
  let par_out = ref None in
  Runtime.spawn rt
    (fun () ->
      Baton.Search.range
        ~par:(fun l r -> Runtime.both l r)
        net ~from ~lo ~hi)
    ~on_done:(function
      | Ok o -> par_out := Some o
      | Error e -> raise e);
  Runtime.run rt;
  let par_msgs = Metrics.since metrics cp in
  let critical_ms = Runtime.now rt in
  let par_out = Option.get !par_out in
  Alcotest.(check bool) "serial complete" true serial_out.Baton.Search.complete;
  Alcotest.(check (list int))
    "same answer" serial_out.Baton.Search.keys par_out.Baton.Search.keys;
  Alcotest.(check int) "paper metric unchanged" serial_msgs par_msgs;
  Alcotest.(check bool) "both sweeps visited peers" true
    (par_out.Baton.Search.nodes_visited > 2);
  Alcotest.(check bool)
    (Printf.sprintf "critical path %.1f < serial sum %.1f" critical_ms
       serial_ms)
    true
    (critical_ms < serial_ms)

let run_driver cfg = Json.to_string (Driver.report_json (Driver.run cfg))

(* Churn-heavy exercises every operation kind, the membership lock and
   failure paths; byte-identical JSON means the whole interleaving —
   clock, latencies, churn victims — replayed exactly. *)
let test_driver_deterministic () =
  let cfg =
    Driver.config ~seed:99 ~keys_per_node:3 ~clients:8 ~ops:120 ~n:60
      ~mix:Driver.churn_heavy ()
  in
  let a = run_driver cfg in
  let b = run_driver cfg in
  Alcotest.(check string) "same seed, byte-identical report" a b;
  Alcotest.(check bool) "non-trivial run" true (String.length a > 100)

let test_driver_accounts_every_op () =
  let cfg =
    Driver.config ~seed:5 ~keys_per_node:3 ~clients:4 ~ops:80 ~n:40
      ~arrival:(Driver.Open { rate_per_s = 500. })
      ~mix:Driver.read_heavy ()
  in
  let r = Driver.run cfg in
  Alcotest.(check int) "issued all" 80 r.Driver.ops_issued;
  Alcotest.(check int) "completed + failed = issued" 80
    (r.Driver.completed + r.Driver.failed);
  Alcotest.(check bool) "virtual time advanced" true (r.Driver.duration_ms > 0.);
  Alcotest.(check bool) "queues observed" true (r.Driver.depth_max >= 1)

let test_bench_json_schema () =
  let cfg =
    Driver.config ~seed:5 ~keys_per_node:2 ~clients:4 ~ops:40 ~n:20
      ~mix:Driver.read_heavy ()
  in
  let doc = Json.to_string (Driver.bench_json [ ("baton", [ Driver.run cfg ]) ]) in
  let contains s =
    let re = Str.regexp_string s in
    match Str.search_forward re doc 0 with
    | (_ : int) -> true
    | exception Not_found -> false
  in
  Alcotest.(check bool) "schema field" true
    (contains Driver.schema_version);
  List.iter
    (fun field -> Alcotest.(check bool) field true (contains field))
    [
      "\"overlays\""; "\"overlay\""; "\"runs\""; "\"throughput_ops_per_s\"";
      "\"latency_ms\""; "\"queue_depth\""; "\"p99_ms\"";
    ]

(* The monitor is a pure observer: switching it on must not move the
   paper's message metric, the failure schedule or the virtual clock. *)
let test_monitor_is_workload_neutral () =
  let cfg ~monitor_every_ms =
    Driver.config ~seed:99 ~keys_per_node:3 ~clients:8 ~ops:120 ~n:60
      ~monitor_every_ms ~mix:Driver.churn_heavy ()
  in
  let off = Driver.run (cfg ~monitor_every_ms:0.) in
  let on = Driver.run (cfg ~monitor_every_ms:250.) in
  Alcotest.(check int) "messages unchanged" off.Driver.messages
    on.Driver.messages;
  Alcotest.(check int) "cache messages unchanged" off.Driver.cache_messages
    on.Driver.cache_messages;
  Alcotest.(check (pair int int)) "same completions and failures"
    (off.Driver.completed, off.Driver.failed)
    (on.Driver.completed, on.Driver.failed);
  Alcotest.(check (float 0.0)) "same virtual duration" off.Driver.duration_ms
    on.Driver.duration_ms;
  Alcotest.(check bool) "off-run report carries no health section" true
    (off.Driver.health = Json.Null);
  Alcotest.(check bool) "on-run report carries one" true
    (on.Driver.health <> Json.Null)

(* The acceptance scenario: a churn-heavy run produces a non-empty
   health time series whose events include at least one degraded -> ok
   recovery (a tick caught a membership op mid-flight, then the overlay
   healed), and the whole section replays byte-identically. *)
let test_churn_health_series () =
  let cfg =
    Driver.config ~seed:99 ~keys_per_node:3 ~clients:8 ~ops:120 ~n:60
      ~monitor_every_ms:400. ~mix:Driver.churn_heavy ()
  in
  let health () = Json.to_string (Driver.run cfg).Driver.health in
  let doc = health () in
  let contains s =
    let re = Str.regexp_string s in
    match Str.search_forward re doc 0 with
    | (_ : int) -> true
    | exception Not_found -> false
  in
  Alcotest.(check bool) "samples present" true (contains "\"samples\":[{");
  (* A degraded -> ok edge, not just any transition. Event objects
     serialize with sorted keys, so within one object "from" precedes
     "to" by well under 80 bytes. *)
  let recovery =
    let rec scan pos =
      match
        Str.search_forward (Str.regexp_string "\"from\":\"degraded\"") doc pos
      with
      | p ->
        let window = String.sub doc p (min 80 (String.length doc - p)) in
        (try
           ignore (Str.search_forward (Str.regexp_string "\"to\":\"ok\"") window 0);
           true
         with Not_found -> scan (p + 1))
      | exception Not_found -> false
    in
    scan 0
  in
  Alcotest.(check bool) "at least one degraded -> ok recovery" true recovery;
  Alcotest.(check bool) "run ends healthy" true
    (contains "\"final\":\"ok\"");
  Alcotest.(check string) "health section byte-identical across runs" doc
    (health ())

let suite =
  [
    Alcotest.test_case "sleep/virtual clock" `Quick test_sleep_and_clock;
    Alcotest.test_case "both overlaps children" `Quick test_both_overlaps;
    Alcotest.test_case "both propagates errors" `Quick test_both_propagates_errors;
    Alcotest.test_case "lock FIFO + exclusion" `Quick test_lock_fifo;
    Alcotest.test_case "range critical path < serial sum" `Quick
      test_range_critical_path;
    Alcotest.test_case "driver deterministic" `Quick test_driver_deterministic;
    Alcotest.test_case "driver accounts every op" `Quick
      test_driver_accounts_every_op;
    Alcotest.test_case "bench json schema" `Quick test_bench_json_schema;
    Alcotest.test_case "monitor is workload-neutral" `Quick
      test_monitor_is_workload_neutral;
    Alcotest.test_case "churn health series" `Quick test_churn_health_series;
  ]
