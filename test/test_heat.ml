(* Demand-heat layer: decayed-counter laws, space-saving sketch bounds
   against an exact-count model, attribution conservation, export
   determinism, the monitor's hotspot alert, and the driver-level
   heat-on/off neutrality guard. *)

module Heat = Baton_obs.Heat
module Json = Baton_obs.Json
module N = Baton.Network
module Net = Baton.Net
module Driver = Baton_runtime.Driver

(* --- Decayed counters ---------------------------------------------- *)

(* The pure decay law: values never grow with elapsed time, halve
   exactly at one half-life, and clamp backwards time to no decay. *)
let decay_law_prop =
  let open QCheck2 in
  Test.make ~name:"decay law: monotone in elapsed time, exact at half-life"
    ~count:200
    Gen.(triple (float_bound_inclusive 1000.) (float_bound_inclusive 500.)
           (float_bound_inclusive 500.))
    (fun (v, dt1, dt2) ->
      let half_life = 100. in
      let read dt = Heat.Decay.decayed ~half_life v ~at:0. ~now:dt in
      let lo, hi = if dt1 < dt2 then (dt1, dt2) else (dt2, dt1) in
      read hi <= read lo +. 1e-9
      && abs_float (read half_life -. (v /. 2.)) < 1e-6 *. (1. +. v)
      && read (-50.) = v)

let test_decay_counters () =
  let d = Heat.Decay.create ~half_life:100. in
  Heat.Decay.bump d 3 ~now:0.;
  Heat.Decay.bump d 3 ~now:0.;
  Alcotest.(check (float 1e-9)) "two bumps" 2. (Heat.Decay.value d 3 ~now:0.);
  Alcotest.(check (float 1e-9)) "one half-life halves" 1.
    (Heat.Decay.value d 3 ~now:100.);
  Alcotest.(check (float 1e-9)) "untouched peer is zero" 0.
    (Heat.Decay.value d 7 ~now:100.);
  (* A bump at t=100 lands on the decayed value. *)
  Heat.Decay.bump d 3 ~now:100.;
  Alcotest.(check (float 1e-9)) "bump adds to decayed value" 2.
    (Heat.Decay.value d 3 ~now:100.);
  let mx, mean, touched = Heat.Decay.stats d ~now:100. in
  Alcotest.(check int) "one touched peer" 1 touched;
  Alcotest.(check (float 1e-9)) "max = mean with one peer" mx mean

(* --- Space-saving sketch ------------------------------------------- *)

(* Error bounds against an exact-count model, for arbitrary access
   sequences over a small alphabet (small enough to force evictions):
   - a monitored key's true count lies in [count - err, count];
   - every per-entry err is at most total/k;
   - any key with true frequency > total/k is monitored;
   - monitored raw counts sum to the total number of adds. *)
let sketch_bounds_prop =
  let open QCheck2 in
  Test.make ~name:"space-saving bounds vs exact counts" ~count:300
    Gen.(list_size (int_range 1 400) (int_range 0 40))
    (fun keys ->
      let k = 8 in
      let s = Heat.Sketch.create k in
      let exact = Hashtbl.create 64 in
      List.iter
        (fun key ->
          Heat.Sketch.add s key;
          Hashtbl.replace exact key
            (1 + Option.value ~default:0 (Hashtbl.find_opt exact key)))
        keys;
      let total = List.length keys in
      assert (Heat.Sketch.total s = total);
      let entries = Heat.Sketch.entries s in
      let sum = List.fold_left (fun a (_, c, _) -> a + c) 0 entries in
      sum = total
      && List.for_all
           (fun (key, count, err) ->
             let true_count =
               Option.value ~default:0 (Hashtbl.find_opt exact key)
             in
             count >= true_count
             && count - err <= true_count
             && err * k <= total)
           entries
      && Hashtbl.fold
           (fun key true_count ok ->
             ok
             && (true_count * k <= total
                || Option.is_some (Heat.Sketch.estimate s key)))
           exact true)

(* Identical access sequences export identical tables: the sketch has
   no hashing or randomization, and ties break deterministically. *)
let test_sketch_deterministic () =
  let feed () =
    let s = Heat.Sketch.create 4 in
    let rng = Baton_util.Rng.create 42 in
    for _ = 1 to 500 do
      Heat.Sketch.add s (Baton_util.Rng.int_in_range rng ~lo:0 ~hi:30)
    done;
    Heat.Sketch.entries s
  in
  Alcotest.(check bool) "same sequence, same table" true (feed () = feed ())

(* --- Attribution conservation -------------------------------------- *)

let test_attribution_conservation () =
  let h = Heat.create ~lo:0 ~hi:1000 () in
  Heat.hop h ~peer:1 Heat.Route;
  Heat.hop h ~peer:1 Heat.Route;
  Heat.hop h ~peer:2 Heat.Maint;
  Heat.hop h ~peer:3 Heat.Aux;
  (* Promotion reclassifies an existing hop — the total is conserved. *)
  Heat.promote h ~peer:1 ~was:Heat.Route;
  let total c = Heat.class_total h c in
  Alcotest.(check int) "serve after promotion" 1 (total Heat.Serve);
  Alcotest.(check int) "route decremented" 1 (total Heat.Route);
  Alcotest.(check int) "maint untouched" 1 (total Heat.Maint);
  Alcotest.(check int) "aux untouched" 1 (total Heat.Aux);
  Alcotest.(check int) "grand total conserved" 4
    (total Heat.Serve + total Heat.Route + total Heat.Maint + total Heat.Aux);
  Alcotest.(check int) "per-peer view agrees" 1 (Heat.count h Heat.Serve 1);
  (* Promoting a hop that was already Serve is a no-op. *)
  Heat.promote h ~peer:1 ~was:Heat.Serve;
  Alcotest.(check int) "serve promote no-op" 1 (total Heat.Serve)

let test_access_feeds_all_views () =
  let h = Heat.create ~k:4 ~buckets:10 ~lo:0 ~hi:100 () in
  for _ = 1 to 5 do
    Heat.access h ~peer:2 7
  done;
  Heat.access_range h ~peer:3 ~lo:40 ~hi:79;
  Alcotest.(check int) "accesses counted" 6 (Heat.accesses h);
  Alcotest.(check bool) "hot key monitored" true
    (match Heat.Sketch.estimate (Heat.sketch h) 7 with
    | Some (c, _) -> c >= 5
    | None -> false);
  (* The range heated buckets 4..7; the point key heated bucket 0. *)
  (match Heat.json h with
  | Json.Obj _ as doc -> (
    match Json.member "heatmap" doc with
    | Some hm -> (
      match Json.member "counts" hm with
      | Some (Json.List counts) ->
        let nth i =
          match List.nth counts i with Json.Int c -> c | _ -> -1
        in
        Alcotest.(check int) "point bucket heated" 5 (nth 0);
        Alcotest.(check int) "range bucket heated" 1 (nth 4);
        Alcotest.(check int) "range end bucket heated" 1 (nth 7);
        Alcotest.(check int) "outside range cold" 0 (nth 9)
      | _ -> Alcotest.fail "heatmap.counts missing")
    | None -> Alcotest.fail "heatmap missing")
  | _ -> Alcotest.fail "json not an object");
  (* peer = -1 records the key without peer attribution. *)
  Heat.access h ~peer:(-1) 7;
  Alcotest.(check int) "anonymous access counted" 7 (Heat.accesses h)

(* --- Export determinism and rendering ------------------------------ *)

let test_json_deterministic_and_renderable () =
  let build () =
    let h = Heat.create ~lo:0 ~hi:10_000 () in
    let rng = Baton_util.Rng.create 7 in
    for i = 0 to 399 do
      let key = Baton_util.Rng.int_in_range rng ~lo:0 ~hi:9_999 in
      let peer = i mod 17 in
      Heat.hop h ~peer Heat.Route;
      Heat.access h ~peer key
    done;
    Heat.promote h ~peer:5 ~was:Heat.Route;
    Json.to_string (Heat.json h)
  in
  let a = build () in
  Alcotest.(check string) "same inputs, byte-identical export" a (build ());
  match Json.parse a with
  | Error msg -> Alcotest.failf "export does not parse: %s" msg
  | Ok doc -> (
    match Heat.render doc with
    | Error msg -> Alcotest.failf "render failed: %s" msg
    | Ok text ->
      let contains needle =
        try
          ignore (Str.search_forward (Str.regexp_string needle) text 0);
          true
        with Not_found -> false
      in
      Alcotest.(check bool) "render shows attribution" true
        (contains "serve" && contains "route");
      Alcotest.(check bool) "render shows the heavy hitters" true
        (contains "heavy hitters");
      Alcotest.(check bool) "render shows the key space" true
        (contains "key space"))

(* --- Monitor hotspot alert ----------------------------------------- *)

let test_monitor_hotspot_escalates () =
  let net = N.build ~seed:11 40 in
  let h = Heat.create ~lo:1 ~hi:1_000_000_000 () in
  Net.set_heat net (Some h);
  let mon = Baton.Monitor.create net in
  (* Quiet below min_hot_accesses even with concentrated demand. *)
  for _ = 1 to 8 do
    Heat.access h ~peer:0 123_456
  done;
  let s = Baton.Monitor.tick mon ~time:10. in
  Alcotest.(check bool) "quiet under the access floor" true
    (List.assoc Baton.Monitor.c_hotspot s.Baton.Monitor.levels
    = Baton.Monitor.Ok);
  (* All demand on one key: top-k share 1, far above 4x uniform. *)
  for _ = 1 to 200 do
    Heat.access h ~peer:0 123_456
  done;
  let s = Baton.Monitor.tick mon ~time:20. in
  Alcotest.(check bool) "first failing tick degrades" true
    (List.assoc Baton.Monitor.c_hotspot s.Baton.Monitor.levels
    = Baton.Monitor.Degraded);
  Alcotest.(check bool) "hot share reported" true
    (s.Baton.Monitor.hot_share > 0.9);
  ignore (Baton.Monitor.tick mon ~time:30.);
  let s = Baton.Monitor.tick mon ~time:40. in
  Alcotest.(check bool) "persistent concentration violates" true
    (List.assoc Baton.Monitor.c_hotspot s.Baton.Monitor.levels
    = Baton.Monitor.Violated);
  Alcotest.(check bool) "overall tracks the hotspot" true
    (s.Baton.Monitor.overall = Baton.Monitor.Violated)

(* --- Driver neutrality guard --------------------------------------- *)

(* The acceptance guard: heat attribution observes deliveries, never
   causes them — the same seed with heat on and off must count
   identical messages, complete the same ops at the same virtual
   instants and produce byte-identical latency digests; only the
   [load] section may differ (absent vs. present). *)
let test_heat_is_metrics_neutral () =
  let cfg ~heat =
    Driver.config ~seed:99 ~keys_per_node:3 ~clients:8 ~ops:120 ~n:60 ~heat
      ~mix:Driver.read_heavy ()
  in
  let off = Driver.run (cfg ~heat:false) in
  let on = Driver.run (cfg ~heat:true) in
  Alcotest.(check int) "messages unchanged" off.Driver.messages
    on.Driver.messages;
  Alcotest.(check int) "cache messages unchanged" off.Driver.cache_messages
    on.Driver.cache_messages;
  Alcotest.(check int) "retries unchanged" off.Driver.retries
    on.Driver.retries;
  Alcotest.(check (pair int int)) "same completions and failures"
    (off.Driver.completed, off.Driver.failed)
    (on.Driver.completed, on.Driver.failed);
  Alcotest.(check (float 0.)) "same virtual duration" off.Driver.duration_ms
    on.Driver.duration_ms;
  let digests r =
    Json.to_string
      (Json.Obj
         (List.map
            (fun (k, d) -> (k, Baton_obs.Timing.json d))
            r.Driver.latencies))
  in
  Alcotest.(check string) "latency digests byte-identical" (digests off)
    (digests on);
  (* Heat off: the report has no load section at all — its JSON is
     byte-identical to a pre-heat build's. Heat on: a non-empty one. *)
  Alcotest.(check bool) "heat-off report has no load field" true
    (Json.member "load" (Driver.report_json off) = None);
  (match Json.member "load" (Driver.report_json on) with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "heat-on report lacks a load object");
  Alcotest.(check bool) "load json populated" true
    (match Json.member "classes" on.Driver.load_json with
    | Some (Json.Obj _) -> true
    | _ -> false);
  (* And the load section itself is deterministic. *)
  let again = Driver.run (cfg ~heat:true) in
  Alcotest.(check string) "same seed, byte-identical load section"
    (Json.to_string on.Driver.load_json)
    (Json.to_string again.Driver.load_json)

let suite =
  [
    QCheck_alcotest.to_alcotest decay_law_prop;
    QCheck_alcotest.to_alcotest sketch_bounds_prop;
    Alcotest.test_case "decayed counters" `Quick test_decay_counters;
    Alcotest.test_case "sketch is deterministic" `Quick
      test_sketch_deterministic;
    Alcotest.test_case "attribution is conserved" `Quick
      test_attribution_conservation;
    Alcotest.test_case "access feeds sketch, histogram and counters" `Quick
      test_access_feeds_all_views;
    Alcotest.test_case "export is deterministic and renderable" `Quick
      test_json_deterministic_and_renderable;
    Alcotest.test_case "monitor hotspot escalates" `Quick
      test_monitor_hotspot_escalates;
    Alcotest.test_case "heat is metrics-neutral" `Quick
      test_heat_is_metrics_neutral;
  ]
