(* Node failure, discovery and repair (paper Section III-C/D). *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Failure = Baton.Failure
module Search = Baton.Search
module Check = Baton.Check
module Bus = Baton_sim.Bus
module Rng = Baton_util.Rng

let test_crash_marks_unreachable () =
  let net = N.build ~seed:1 20 in
  let victim = Net.random_peer net in
  Failure.crash net victim;
  Alcotest.(check bool) "unreachable" true (Bus.is_failed (Net.bus net) victim.Node.id)

let test_repair_restores_invariants () =
  let net = N.build ~seed:2 60 in
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let ids = Net.live_ids net in
    let victim = Net.peer net (Rng.pick rng ids) in
    Failure.crash_and_repair net victim;
    Check.all net
  done;
  Alcotest.(check int) "size reduced by 20" 40 (Net.size net)

let test_failed_leaf_range_taken_over () =
  let net = N.build ~seed:3 40 in
  (* Pick a leaf victim; its range must be owned by someone after repair. *)
  let victim =
    List.find (fun n -> Node.is_leaf n) (Net.peers net)
  in
  let lost_range = victim.Node.range in
  Failure.crash_and_repair net victim;
  let probe = lost_range.Baton.Range.lo in
  let { Search.node; _ } = Search.exact net ~from:(Net.random_peer net) probe in
  Alcotest.(check bool) "someone owns the range" true
    (Baton.Range.contains node.Node.range probe);
  Check.all net

let test_root_failure () =
  let net = N.build ~seed:4 50 in
  let root = Option.get (Net.root net) in
  Failure.crash_and_repair net root;
  Alcotest.(check bool) "new root exists" true (Option.is_some (Net.root net));
  Alcotest.(check int) "one fewer peer" 49 (Net.size net);
  Check.all net

let test_repair_idempotent () =
  let net = N.build ~seed:5 30 in
  let victim = Net.random_peer net in
  Failure.crash net victim;
  let reporter = Net.random_peer net in
  Failure.repair net ~reporter victim.Node.id;
  (* A second report of the same failure is a no-op. *)
  Failure.repair net ~reporter:(Net.random_peer net) victim.Node.id;
  Alcotest.(check int) "one repair only" 29 (Net.size net);
  Check.all net

let test_routing_around_failure_before_repair () =
  (* Section III-D: queries keep working while a node is down; the
     search drops dead links and routes around. *)
  let net = N.build ~seed:6 80 in
  let rng = Rng.create 7 in
  let keys = Array.init 300 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (N.insert net) keys;
  (* Fail a non-root internal node but do NOT repair yet. *)
  let victim =
    List.find
      (fun (n : Node.t) -> (not (Node.is_leaf n)) && not (Node.is_root n))
      (Net.peers net)
  in
  Failure.crash net victim;
  let victim_range = victim.Node.range in
  let reachable = ref 0 and total = ref 0 in
  Array.iter
    (fun k ->
      (* Keys stored at the dead node are unreachable; all others must
         still be found. *)
      if not (Baton.Range.contains victim_range k) then begin
        incr total;
        let from = Net.random_peer net in
        match Search.lookup net ~from k with
        | { Search.found = true; _ } -> incr reachable
        | { Search.found = false; _ } -> ()
        | exception Search.Routing_stuck _ -> ()
      end)
    keys;
  Alcotest.(check int) "all surviving keys reachable" !total !reachable;
  (* Now repair and verify a clean state. *)
  Failure.repair net ~reporter:(Net.random_peer net) victim.Node.id;
  Check.all net

let test_multiple_concurrent_failures () =
  let net = N.build ~seed:8 100 in
  let rng = Rng.create 11 in
  (* Crash several nodes at once, then repair them one by one. *)
  let victims =
    List.filteri (fun i _ -> i < 8)
      (List.filter
         (fun (n : Node.t) -> not (Node.is_root n))
         (List.sort
            (fun (a : Node.t) (b : Node.t) -> compare a.Node.id b.Node.id)
            (Net.peers net)))
  in
  List.iter (fun v -> Failure.crash net v) victims;
  ignore rng;
  List.iter
    (fun (v : Node.t) ->
      if Bus.is_failed (Net.bus net) v.Node.id then
        Failure.repair net ~reporter:(Net.random_peer net) v.Node.id)
    victims;
  Alcotest.(check int) "all repaired" 92 (Net.size net);
  Check.all net

let suite =
  [
    Alcotest.test_case "crash marks unreachable" `Quick test_crash_marks_unreachable;
    Alcotest.test_case "repair restores invariants" `Quick test_repair_restores_invariants;
    Alcotest.test_case "failed leaf range takeover" `Quick test_failed_leaf_range_taken_over;
    Alcotest.test_case "root failure" `Quick test_root_failure;
    Alcotest.test_case "repair idempotent" `Quick test_repair_idempotent;
    Alcotest.test_case "routing around failure" `Quick test_routing_around_failure_before_repair;
    Alcotest.test_case "multiple failures" `Quick test_multiple_concurrent_failures;
  ]
