(* Adversarial scenario engine and consistency oracle: bus partitions,
   gray peers, the fault-schedule grammar, the Search holes contract,
   suspicion bookkeeping under repeated timeouts, and driver-level
   determinism with faults and the oracle on. *)

module Rng = Baton_util.Rng
module Bus = Baton_sim.Bus
module Engine = Baton_sim.Engine
module Metrics = Baton_sim.Metrics
module Partition = Baton_sim.Partition
module Churn = Baton_workload.Churn
module Oracle = Baton_obs.Oracle
module Json = Baton_obs.Json
module Net = Baton.Net
module Driver = Baton_runtime.Driver

let expect_timeout bus ~src ~dst =
  match Bus.send bus ~src ~dst ~kind:"q" with
  | () -> Alcotest.failf "expected Timeout on %d->%d" src dst
  | exception Bus.Timeout d -> Alcotest.(check int) "timeout carries dst" dst d

(* --- Bus: partitions ------------------------------------------------ *)

let test_partition_blocks_pairs () =
  let bus = Bus.create () in
  Bus.set_partition bus
    ~assign:[ (1, 0); (2, 0); (3, 1) ]
    ~blocked:[ (0, 1); (1, 0) ];
  Alcotest.(check bool) "active" true (Bus.partition_active bus);
  expect_timeout bus ~src:1 ~dst:3;
  expect_timeout bus ~src:3 ~dst:2;
  (* Same island: unaffected. *)
  Bus.send bus ~src:1 ~dst:2 ~kind:"q";
  (* Unassigned peers (joined during the partition) reach everyone. *)
  Bus.send bus ~src:9 ~dst:3 ~kind:"q";
  Bus.send bus ~src:1 ~dst:9 ~kind:"q";
  Alcotest.(check int) "blocked sends counted" 2
    (Metrics.event_count (Bus.metrics bus) Bus.partition_event);
  Bus.clear_partition bus;
  Alcotest.(check bool) "healed" false (Bus.partition_active bus);
  Bus.send bus ~src:1 ~dst:3 ~kind:"q"

let test_partition_oneway () =
  let bus = Bus.create () in
  (* Block only island 1 -> island 0: the higher island cannot reach
     down, but its peers still hear the lower island. *)
  Bus.set_partition bus ~assign:[ (1, 0); (3, 1) ] ~blocked:[ (1, 0) ];
  expect_timeout bus ~src:3 ~dst:1;
  Bus.send bus ~src:1 ~dst:3 ~kind:"q"

(* --- Bus: gray peers ------------------------------------------------ *)

let test_gray_peer_drops_and_slows () =
  let bus = Bus.create () in
  Bus.set_gray_model bus ~seed:11;
  Bus.set_gray_peer bus 5 ~extra_drop:1.0 ~slow:3.;
  Alcotest.(check int) "one gray peer" 1 (Bus.gray_count bus);
  Alcotest.(check bool) "is_gray" true (Bus.is_gray bus 5);
  expect_timeout bus ~src:1 ~dst:5;
  expect_timeout bus ~src:5 ~dst:1;
  Alcotest.(check int) "gray drops counted" 2
    (Metrics.event_count (Bus.metrics bus) Bus.gray_event);
  Alcotest.(check (float 0.)) "slowdown is the worse endpoint" 3.
    (Bus.latency_factor bus ~src:1 ~dst:5);
  Alcotest.(check (float 0.)) "healthy pair unscaled" 1.
    (Bus.latency_factor bus ~src:1 ~dst:2);
  Bus.clear_gray_peer bus 5;
  Bus.send bus ~src:1 ~dst:5 ~kind:"q";
  Alcotest.(check (float 0.)) "recovered" 1. (Bus.latency_factor bus ~src:1 ~dst:5)

let test_gray_validation () =
  let bus = Bus.create () in
  Bus.set_gray_model bus ~seed:1;
  Alcotest.check_raises "drop > 1"
    (Invalid_argument "Bus.set_gray_peer: extra_drop outside [0, 1]") (fun () ->
      Bus.set_gray_peer bus 1 ~extra_drop:1.5 ~slow:2.);
  Alcotest.check_raises "slow < 1"
    (Invalid_argument "Bus.set_gray_peer: slow < 1") (fun () ->
      Bus.set_gray_peer bus 1 ~extra_drop:0.5 ~slow:0.5)

(* The gray PRNG is consulted only for hops touching a gray endpoint,
   so healthy traffic cannot perturb the fault sequence. *)
let test_gray_stream_isolated () =
  let outcomes bus =
    List.init 40 (fun i ->
        let dst = if i mod 2 = 0 then 5 else 2 in
        match Bus.send bus ~src:1 ~dst ~kind:"q" with
        | () -> true
        | exception Bus.Timeout _ -> false)
  in
  let a =
    let bus = Bus.create () in
    Bus.set_gray_model bus ~seed:42;
    Bus.set_gray_peer bus 5 ~extra_drop:0.5 ~slow:2.;
    outcomes bus
  in
  let b =
    let bus = Bus.create () in
    Bus.set_gray_model bus ~seed:42;
    Bus.set_gray_peer bus 5 ~extra_drop:0.5 ~slow:2.;
    (* Extra healthy traffic before the same sequence: must not shift
       the gray draws. *)
    for _ = 1 to 100 do
      Bus.send bus ~src:2 ~dst:3 ~kind:"q"
    done;
    outcomes bus
  in
  Alcotest.(check (list bool)) "same gray outcomes" a b

(* --- Bus: revive clears stale stun (satellite regression) ----------- *)

let test_revive_clears_stun () =
  let bus = Bus.create () in
  Bus.set_faults bus ~seed:3 ~drop_rate:0. ~transient_rate:0. ();
  Bus.stun bus 2 ~msgs:5;
  expect_timeout bus ~src:1 ~dst:2;
  (* Crash mid-stun, then restart: the revived peer must not silently
     swallow its first messages because of the stale stun. *)
  Bus.fail bus 2;
  Alcotest.check_raises "dead" (Bus.Unreachable 2) (fun () ->
      Bus.send bus ~src:1 ~dst:2 ~kind:"q");
  Bus.revive bus 2;
  Bus.send bus ~src:1 ~dst:2 ~kind:"q"

let test_fail_clears_stun () =
  let bus = Bus.create () in
  Bus.set_faults bus ~seed:3 ~drop_rate:0. ~transient_rate:0. ();
  Bus.stun bus 2 ~msgs:5;
  Bus.fail bus 2;
  (* A fresh stun after the revival still works: only stale state is
     cleared, the mechanism stays usable. *)
  Bus.revive bus 2;
  Bus.send bus ~src:1 ~dst:2 ~kind:"q";
  Bus.stun bus 2 ~msgs:1;
  expect_timeout bus ~src:1 ~dst:2;
  Bus.send bus ~src:1 ~dst:2 ~kind:"q"

(* --- Fault-schedule grammar ---------------------------------------- *)

let test_parse_round_trip () =
  let spec =
    "partition@500+1500:k=2,oneway;subtree@800:roots=2;gray@300+2000:peers=5,drop=0.3,slow=4"
  in
  match Partition.parse spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok schedule ->
    Alcotest.(check int) "three specs" 3 (List.length schedule);
    let printed = Partition.to_string schedule in
    (match Partition.parse printed with
    | Ok again ->
      Alcotest.(check string) "round trip" printed (Partition.to_string again)
    | Error e -> Alcotest.failf "re-parse failed: %s" e)

let test_parse_defaults_and_errors () =
  (match Partition.parse "subtree@100;gray@0+50:peers=2" with
  | Ok [ Partition.Subtree_crash { roots; _ }; Partition.Gray { extra_drop; slow; _ } ] ->
    Alcotest.(check int) "default roots" 1 roots;
    Alcotest.(check (float 0.)) "default drop" Partition.default_gray_drop extra_drop;
    Alcotest.(check (float 0.)) "default slow" Partition.default_gray_slow slow
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Partition.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ "partition@100:k=2"; "partition@1+2:k=1"; "gray@1+2:peers=0"; "nope@1"; "" ]

let test_islands_and_blocked_pairs () =
  Alcotest.(check (list (pair int int)))
    "contiguous halves"
    [ (10, 0); (11, 0); (12, 1); (13, 1) ]
    (Partition.islands ~order:[| 10; 11; 12; 13 |] ~k:2);
  Alcotest.(check int) "k=3 symmetric pairs" 6
    (List.length (Partition.blocked_pairs ~k:3 ~oneway:false));
  Alcotest.(check (list (pair int int)))
    "k=3 one-way: only downhill blocked"
    [ (1, 0); (2, 0); (2, 1) ]
    (List.sort compare (Partition.blocked_pairs ~k:3 ~oneway:true))

(* --- Engine.every --------------------------------------------------- *)

let test_engine_every () =
  let engine = Engine.create () in
  let fired = ref [] in
  Engine.every engine ~period:10. (fun () ->
      fired := Engine.now engine :: !fired;
      List.length !fired < 3);
  Engine.run engine;
  Alcotest.(check (list (float 0.))) "three ticks, one period apart"
    [ 10.; 20.; 30. ] (List.rev !fired);
  Alcotest.check_raises "period must be positive"
    (Invalid_argument "Engine.every: period <= 0") (fun () ->
      Engine.every engine ~period:0. (fun () -> false))

(* --- Churn.bursty ---------------------------------------------------- *)

let test_bursty_schedule () =
  let rng = Rng.create 9 in
  let events = Churn.bursty rng ~joins:10 ~leaves:8 ~bursts:3 ~burst_len:4 in
  let count e = Array.fold_left (fun n x -> if x = e then n + 1 else n) 0 events in
  Alcotest.(check int) "length" 30 (Array.length events);
  Alcotest.(check int) "joins" 10 (count Churn.Join);
  Alcotest.(check int) "leaves" 8 (count Churn.Leave);
  Alcotest.(check int) "fails" 12 (count Churn.Fail);
  (* Failures arrive as maximal runs of exactly burst_len. *)
  let runs = ref [] and cur = ref 0 in
  Array.iter
    (fun e ->
      if e = Churn.Fail then incr cur
      else if !cur > 0 then begin
        runs := !cur :: !runs;
        cur := 0
      end)
    events;
  if !cur > 0 then runs := !cur :: !runs;
  List.iter
    (fun len -> Alcotest.(check bool) "burst length multiple" true (len mod 4 = 0))
    !runs;
  Alcotest.check_raises "burst_len < 1" (Invalid_argument "Churn.bursty")
    (fun () -> ignore (Churn.bursty rng ~joins:1 ~leaves:1 ~bursts:1 ~burst_len:0))

(* --- Search: holes contract ----------------------------------------- *)

let test_search_holes_quiescent () =
  let net = Baton.Network.build ~seed:5 30 in
  let keys = List.init 50 (fun i -> (i * 1987) + 13) in
  ignore (Baton.Update.bulk_insert net ~from:(Net.random_peer net) keys);
  let r =
    Baton.Search.range net ~from:(Net.random_peer net) ~lo:1 ~hi:200_000
  in
  Alcotest.(check bool) "complete" true r.Baton.Search.complete;
  Alcotest.(check (list (pair int int))) "no holes" [] r.Baton.Search.holes;
  let e = Baton.Search.exact net ~from:(Net.random_peer net) 12_345 in
  Alcotest.(check bool) "exact complete" true e.Baton.Search.complete;
  Alcotest.(check (list (pair int int))) "exact no holes" [] e.Baton.Search.holes

let test_search_holes_cover_missing_keys () =
  let net = Baton.Network.build ~seed:6 40 in
  let keys = List.init 200 (fun i -> (i * 4_999_999) + 101) in
  ignore (Baton.Update.bulk_insert net ~from:(Net.random_peer net) keys);
  let lo = 1 and hi = Baton_workload.Datagen.domain_hi - 1 in
  let all =
    (Baton.Search.range net ~from:(Net.random_peer net) ~lo ~hi).Baton.Search.keys
  in
  Alcotest.(check int) "all keys reachable" 200 (List.length all);
  (* Kill a mid-tree peer outright (no repair): the sweep must bridge
     the gap, flag the answer incomplete, and report holes that cover
     exactly the keys it could not reach. *)
  let victim =
    let peers =
      List.sort
        (fun (a : Baton.Node.t) (b : Baton.Node.t) ->
          compare a.Baton.Node.range.Baton.Range.lo
            b.Baton.Node.range.Baton.Range.lo)
        (Net.peers net)
    in
    List.nth peers (List.length peers / 2)
  in
  Bus.fail (Net.bus net) victim.Baton.Node.id;
  let from =
    List.find
      (fun (p : Baton.Node.t) -> p.Baton.Node.id <> victim.Baton.Node.id)
      (Net.peers net)
  in
  let r = Baton.Search.range net ~from ~lo ~hi in
  Alcotest.(check bool) "incomplete" false r.Baton.Search.complete;
  Alcotest.(check bool) "has holes" true (r.Baton.Search.holes <> []);
  (* Holes are within the query, ascending and disjoint. *)
  let rec well_formed prev = function
    | [] -> true
    | (a, b) :: tl -> a >= lo && b <= hi + 1 && a < b && a >= prev && well_formed b tl
  in
  Alcotest.(check bool) "holes well-formed" true (well_formed lo r.Baton.Search.holes);
  let in_hole k = List.exists (fun (a, b) -> a <= k && k < b) r.Baton.Search.holes in
  List.iter
    (fun k ->
      if not (List.mem k r.Baton.Search.keys) then
        Alcotest.(check bool) (Printf.sprintf "missing key %d inside a hole" k)
          true (in_hole k))
    all;
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "answered key %d outside holes" k)
        false (in_hole k))
    r.Baton.Search.keys

(* --- Failure: repeated timeouts to an already-suspected peer -------- *)

let test_repeated_timeout_no_double_repair () =
  let net = Baton.Network.build ~seed:7 20 in
  Net.set_suspicion_repair net true;
  let bus = Net.bus net in
  Bus.set_faults bus ~seed:1 ~drop_rate:0. ~transient_rate:0. ();
  let metrics = Net.metrics net in
  let peers = Net.peers net in
  let suspect = List.hd peers in
  let observer =
    List.find
      (fun (p : Baton.Node.t) -> p.Baton.Node.id <> suspect.Baton.Node.id)
      peers
  in
  (* The peer is alive but silent: every probe times out. Repeated
     observations must keep counting without ever convicting. *)
  Bus.stun bus suspect.Baton.Node.id ~msgs:1000;
  for i = 1 to 10 do
    Baton.Failure.observe_timeout net ~observer suspect.Baton.Node.id;
    Alcotest.(check int)
      (Printf.sprintf "suspicions monotone at %d" i)
      i
      (Metrics.event_count metrics Baton.Msg.ev_suspect)
  done;
  Alcotest.(check int) "silence alone never triggers repair" 0
    (Metrics.event_count metrics Baton.Msg.ev_repair_triggered);
  (* Now the suspect really dies (the crash clears the stale stun): an
     unreachable address convicts, triggering exactly one repair, and
     further observations of the same id do not start a second one. *)
  Bus.fail bus suspect.Baton.Node.id;
  Baton.Failure.observe_unreachable net ~observer suspect.Baton.Node.id;
  Alcotest.(check int) "one repair" 1
    (Metrics.event_count metrics Baton.Msg.ev_repair_triggered);
  Baton.Failure.observe_timeout net ~observer suspect.Baton.Node.id;
  Baton.Failure.observe_timeout net ~observer suspect.Baton.Node.id;
  Alcotest.(check int) "no double repair" 1
    (Metrics.event_count metrics Baton.Msg.ev_repair_triggered);
  Alcotest.(check bool) "peer repaired out of the overlay" true
    (Net.peer_opt net suspect.Baton.Node.id = None
    || not (Bus.is_failed bus suspect.Baton.Node.id))

(* --- Oracle ---------------------------------------------------------- *)

let verdict =
  Alcotest.testable
    (fun ppf -> function
      | Oracle.Pass -> Fmt.string ppf "Pass"
      | Oracle.Tolerated r -> Fmt.pf ppf "Tolerated %s" r
      | Oracle.Violation r -> Fmt.pf ppf "Violation %s" r)
    (fun a b ->
      match (a, b) with
      | Oracle.Pass, Oracle.Pass -> true
      | Oracle.Tolerated _, Oracle.Tolerated _ -> true
      | Oracle.Violation _, Oracle.Violation _ -> true
      | _ -> false)

let test_oracle_exact () =
  let o = Oracle.create () in
  Oracle.seed_keys o [ 10; 20 ];
  let check ?(complete = true) ~key ~found () =
    Oracle.check_exact o ~started:5. ~finished:6. ~key ~found ~complete ()
  in
  Alcotest.check verdict "present found" Oracle.Pass (check ~key:10 ~found:true ());
  Alcotest.check verdict "absent not found" Oracle.Pass (check ~key:11 ~found:false ());
  Alcotest.check verdict "stale read" (Oracle.Violation "stale read")
    (check ~key:20 ~found:false ());
  Alcotest.check verdict "incomplete miss tolerated" (Oracle.Tolerated "x")
    (check ~key:20 ~found:false ~complete:false ());
  Alcotest.check verdict "phantom" (Oracle.Violation "phantom")
    (check ~key:12 ~found:true ());
  Alcotest.(check int) "checked" 5 (Oracle.checked o);
  Alcotest.(check int) "violations" 2 (Oracle.violation_count o);
  Alcotest.(check int) "incomplete flagged" 1 (Oracle.incomplete_count o)

let test_oracle_uncertainty () =
  let o = Oracle.create () in
  (* In-flight mutation: every overlapping reader is excused either way. *)
  Oracle.begin_mutation o 30;
  Alcotest.check verdict "pending uncertain (found)" (Oracle.Tolerated "x")
    (Oracle.check_exact o ~started:1. ~finished:2. ~key:30 ~found:true
       ~complete:true ());
  Oracle.commit_insert o 30 ~started:5. ~finished:8.;
  (* Reader whose window opened inside the commit window: still
     uncertain. *)
  Alcotest.check verdict "overlapping commit uncertain" (Oracle.Tolerated "x")
    (Oracle.check_exact o ~started:6. ~finished:9. ~key:30 ~found:false
       ~complete:true ());
  (* Reader starting after the commit settled: definite. *)
  Alcotest.check verdict "settled insert read" Oracle.Pass
    (Oracle.check_exact o ~started:9. ~finished:10. ~key:30 ~found:true
       ~complete:true ());
  Alcotest.check verdict "settled insert stale" (Oracle.Violation "stale read")
    (Oracle.check_exact o ~started:9. ~finished:10. ~key:30 ~found:false
       ~complete:true ());
  (* An aborted mutation leaves the previous state in force. *)
  Oracle.begin_mutation o 40;
  Oracle.abort_mutation o 40;
  Alcotest.check verdict "aborted insert never applied" Oracle.Pass
    (Oracle.check_exact o ~started:11. ~finished:12. ~key:40 ~found:false
       ~complete:true ())

let test_oracle_lost_keys () =
  let o = Oracle.create () in
  Oracle.seed_keys o [ 10 ];
  Oracle.note_lost o ~time:4. [ 10 ];
  Alcotest.(check int) "lost counted" 1 (Oracle.lost_keys o);
  (* After the crash instant, absence is correct — not a stale read. *)
  Alcotest.check verdict "crashed key absent" Oracle.Pass
    (Oracle.check_exact o ~started:5. ~finished:6. ~key:10 ~found:false
       ~complete:true ());
  Alcotest.check verdict "crashed key phantom" (Oracle.Violation "phantom")
    (Oracle.check_exact o ~started:5. ~finished:6. ~key:10 ~found:true
       ~complete:true ())

let test_oracle_range () =
  let o = Oracle.create () in
  Oracle.seed_keys o [ 10; 20; 30 ];
  let check ?(complete = true) ?(holes = []) ~keys () =
    Oracle.check_range o ~started:5. ~finished:6. ~lo:0 ~hi:100 ~keys ~complete
      ~holes ()
  in
  Alcotest.check verdict "full answer" Oracle.Pass
    (check ~keys:[ 10; 20; 30 ] ());
  Alcotest.check verdict "false-complete" (Oracle.Violation "x")
    (check ~keys:[ 10; 30 ] ());
  Alcotest.check verdict "broken tiling" (Oracle.Violation "x")
    (check ~keys:[ 10; 30 ] ~complete:false ~holes:[ (40, 50) ] ());
  Alcotest.check verdict "omission inside reported hole" (Oracle.Tolerated "x")
    (check ~keys:[ 10; 30 ] ~complete:false ~holes:[ (15, 25) ] ());
  Alcotest.check verdict "phantom key" (Oracle.Violation "x")
    (check ~keys:[ 10; 20; 30; 55 ] ());
  Alcotest.check verdict "out-of-range key" (Oracle.Violation "x")
    (check ~keys:[ 10; 20; 30; 200 ] ());
  (* Judged as sets: the store is a multiset, presence is the model. *)
  Alcotest.check verdict "duplicates are not phantoms" Oracle.Pass
    (check ~keys:[ 10; 10; 20; 30 ] ());
  match Oracle.json o with
  | Json.Obj fields ->
    Alcotest.(check bool) "json has violation details" true
      (List.mem_assoc "violation_details" fields)
  | _ -> Alcotest.fail "oracle json shape"

(* --- Driver: adversarial runs are deterministic and violation-free -- *)

let adv_config ?schedule () =
  let fault_schedule =
    match schedule with
    | None -> []
    | Some spec -> (
      match Partition.parse spec with
      | Ok s -> s
      | Error e -> Alcotest.failf "schedule: %s" e)
  in
  Driver.config ~seed:4242 ~keys_per_node:5 ~clients:8 ~ops:80
    ~fault_schedule ~oracle:true ~n:60 ~mix:Driver.adversarial ()

let test_driver_adversarial_deterministic () =
  let spec = "partition@200+400:k=2;gray@100+500:peers=3;subtree@700" in
  let r1 = Driver.run (adv_config ~schedule:spec ()) in
  let r2 = Driver.run (adv_config ~schedule:spec ()) in
  Alcotest.(check string) "byte-identical reports"
    (Json.to_string (Driver.report_json r1))
    (Json.to_string (Driver.report_json r2));
  let o = Option.get r1.Driver.oracle in
  Alcotest.(check bool) "ops judged" true (Oracle.checked o > 0);
  Alcotest.(check int) "zero violations" 0 (Oracle.violation_count o);
  Alcotest.(check bool) "scenario ran" true (r1.Driver.scenario <> []);
  Alcotest.(check bool) "partition bit" true (r1.Driver.partition_timeouts > 0)

let test_driver_oracle_off_identical_metrics () =
  (* The oracle and tracer are pure observers: same seed with checking
     on and off transmits the identical message multiset. *)
  let on = Driver.run (adv_config ()) in
  let off =
    Driver.run
      (Driver.config ~seed:4242 ~keys_per_node:5 ~clients:8 ~ops:80 ~n:60
         ~mix:Driver.adversarial ())
  in
  Alcotest.(check int) "same messages" off.Driver.messages on.Driver.messages;
  Alcotest.(check (float 0.)) "same virtual duration" off.Driver.duration_ms
    on.Driver.duration_ms

let suite =
  [
    Alcotest.test_case "partition blocks island pairs" `Quick test_partition_blocks_pairs;
    Alcotest.test_case "partition one-way" `Quick test_partition_oneway;
    Alcotest.test_case "gray peer drops and slows" `Quick test_gray_peer_drops_and_slows;
    Alcotest.test_case "gray validation" `Quick test_gray_validation;
    Alcotest.test_case "gray PRNG isolated" `Quick test_gray_stream_isolated;
    Alcotest.test_case "revive clears stale stun" `Quick test_revive_clears_stun;
    Alcotest.test_case "fail clears stun, fresh stun works" `Quick test_fail_clears_stun;
    Alcotest.test_case "schedule parse round-trip" `Quick test_parse_round_trip;
    Alcotest.test_case "schedule defaults and errors" `Quick test_parse_defaults_and_errors;
    Alcotest.test_case "islands and blocked pairs" `Quick test_islands_and_blocked_pairs;
    Alcotest.test_case "engine every" `Quick test_engine_every;
    Alcotest.test_case "bursty churn schedule" `Quick test_bursty_schedule;
    Alcotest.test_case "search holes: quiescent" `Quick test_search_holes_quiescent;
    Alcotest.test_case "search holes cover missing keys" `Quick test_search_holes_cover_missing_keys;
    Alcotest.test_case "repeated timeouts: no double repair" `Quick test_repeated_timeout_no_double_repair;
    Alcotest.test_case "oracle exact verdicts" `Quick test_oracle_exact;
    Alcotest.test_case "oracle uncertainty windows" `Quick test_oracle_uncertainty;
    Alcotest.test_case "oracle lost keys" `Quick test_oracle_lost_keys;
    Alcotest.test_case "oracle range verdicts" `Quick test_oracle_range;
    Alcotest.test_case "driver adversarial deterministic" `Slow test_driver_adversarial_deterministic;
    Alcotest.test_case "oracle is a pure observer" `Slow test_driver_oracle_off_identical_metrics;
  ]
