(* Self-profiling layer: the profiler's region accounting, the
   time-series ring, the JSON parser behind bench-diff, the
   probes-on/off neutrality guard and the regression-gate verdicts. *)

module Profile = Baton_obs.Profile
module Series = Baton_obs.Series
module Json = Baton_obs.Json
module Engine = Baton_sim.Engine
module Driver = Baton_runtime.Driver
module Bench_diff = Baton_runtime.Bench_diff

(* --- Profile ------------------------------------------------------- *)

let test_profile_regions () =
  let p = Profile.create () in
  for _ = 1 to 5 do
    Profile.wrap p Profile.s_exact (fun () -> ())
  done;
  Profile.wrap p Profile.s_range (fun () -> ());
  Alcotest.(check int) "five exact calls" 5 (Profile.calls p Profile.s_exact);
  Alcotest.(check int) "one range call" 1 (Profile.calls p Profile.s_range);
  Alcotest.(check int) "untouched region" 0 (Profile.calls p Profile.s_repair);
  Alcotest.(check (list string))
    "subsystems sorted" [ Profile.s_exact; Profile.s_range ]
    (List.map (fun (name, _, _) -> name) (Profile.subsystems p));
  Alcotest.(check bool) "wall time non-negative" true
    (Profile.wall_ms p Profile.s_exact >= 0.)

(* Re-entrant regions bill only the outermost activation: a recursive
   repair must count one timed interval, not nest-double its wall
   time. *)
let test_profile_nesting () =
  let p = Profile.create () in
  Profile.wrap p Profile.s_repair (fun () ->
      Profile.wrap p Profile.s_repair (fun () ->
          Profile.wrap p Profile.s_repair (fun () -> ())));
  Alcotest.(check int) "three activations counted" 3
    (Profile.calls p Profile.s_repair);
  (* Depth bookkeeping survived: a fresh activation still closes. *)
  Profile.wrap p Profile.s_repair (fun () -> ());
  Alcotest.(check int) "fourth call" 4 (Profile.calls p Profile.s_repair)

let test_profile_leave_unopened_rejected () =
  let p = Profile.create () in
  Alcotest.check_raises "leave without enter"
    (Invalid_argument "Profile.leave: \"search.exact\" is not open")
    (fun () -> Profile.leave p Profile.s_exact)

let test_profile_wrap_reraises () =
  let p = Profile.create () in
  (try Profile.wrap p Profile.s_exact (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "failed call still counted" 1
    (Profile.calls p Profile.s_exact);
  (* The region closed despite the exception: a new wrap is billed as a
     fresh outermost activation, not swallowed as nested. *)
  Profile.wrap p Profile.s_exact (fun () -> ());
  Alcotest.(check int) "region reusable" 2 (Profile.calls p Profile.s_exact)

let test_profile_json_shape () =
  let p = Profile.create () in
  Profile.wrap p Profile.s_dispatch (fun () -> ());
  Profile.wrap p Profile.s_dispatch (fun () -> ());
  Profile.stop p;
  let doc = Profile.json p in
  let get k = Option.get (Json.member k doc) in
  (match get "events" with
  | Json.Int 2 -> ()
  | other -> Alcotest.failf "events: %s" (Json.to_string other));
  (match get "gc" with
  | Json.Obj fields ->
    List.iter
      (fun k ->
        Alcotest.(check bool) ("gc." ^ k) true (List.mem_assoc k fields))
      [ "minor_collections"; "major_collections"; "minor_words" ]
  | other -> Alcotest.failf "gc: %s" (Json.to_string other));
  (match Json.member "engine.dispatch" (get "subsystems") with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "subsystems.engine.dispatch missing");
  Alcotest.(check bool) "elapsed frozen by stop" true
    (Profile.elapsed_ms p >= 0.);
  Alcotest.(check bool) "table mentions dispatch" true
    (let table = Profile.table p in
     let re = Str.regexp_string "engine.dispatch" in
     match Str.search_forward re table 0 with
     | (_ : int) -> true
     | exception Not_found -> false)

(* --- Series -------------------------------------------------------- *)

let test_series_ring_bounds () =
  let s = Series.create ~capacity:4 () in
  for i = 1 to 10 do
    Series.record s ~time:(float_of_int i) [ ("x", float_of_int (i * i)) ]
  done;
  Alcotest.(check int) "recorded counts everything" 10 (Series.recorded s);
  Alcotest.(check int) "retained bounded by capacity" 4 (Series.retained s);
  Alcotest.(check int) "dropped is the difference" 6 (Series.dropped s);
  let times = List.map (fun smp -> smp.Series.time) (Series.samples s) in
  Alcotest.(check (list (float 0.))) "oldest evicted first, order kept"
    [ 7.; 8.; 9.; 10. ] times;
  Alcotest.(check (float 0.)) "latest survives" 10.
    (Option.get (Series.latest s)).Series.time

let test_series_jsonl () =
  let s = Series.create () in
  Series.record s ~time:1000. [ ("completed", 12.); ("messages", 340.) ];
  Series.record s ~time:2000. [ ("completed", 30.); ("messages", 700.) ];
  let lines = String.split_on_char '\n' (String.trim (Series.jsonl s)) in
  Alcotest.(check int) "one line per sample" 2 (List.length lines);
  Alcotest.(check string) "deterministic sample line"
    {|{"completed":12.0,"messages":340.0,"t":1000.0}|} (List.nth lines 0);
  (* json_fields splices into a parent object. *)
  let doc = Json.Obj (Series.json_fields s) in
  match Json.member "samples" doc with
  | Some (Json.List [ _; _ ]) -> ()
  | _ -> Alcotest.fail "json_fields.samples should list both samples"

(* --- Json.parse (the parser behind bench-diff) --------------------- *)

let test_json_parse_roundtrip () =
  List.iter
    (fun doc ->
      let text = Json.to_string doc in
      match Json.parse text with
      | Ok parsed ->
        Alcotest.(check string) ("roundtrip " ^ text) text
          (Json.to_string parsed)
      | Error msg -> Alcotest.failf "parse %s: %s" text msg)
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 1.5;
      Json.String "a \"quoted\"\nline";
      Json.List [ Json.Int 1; Json.Null; Json.Obj [] ];
      Json.Obj
        [
          ("b", Json.Float 3.25);
          ("a", Json.List [ Json.String "x" ]);
          ("c", Json.Obj [ ("nested", Json.Bool false) ]);
        ];
    ];
  (* Pretty output parses back to the same tree as compact output. *)
  let doc =
    Json.Obj [ ("runs", Json.List [ Json.Obj [ ("messages", Json.Int 7) ] ]) ]
  in
  match Json.parse (Json.to_pretty_string doc) with
  | Ok parsed ->
    Alcotest.(check string) "pretty parses equal" (Json.to_string doc)
      (Json.to_string parsed)
  | Error msg -> Alcotest.failf "pretty parse: %s" msg

let test_json_parse_rejects_garbage () =
  List.iter
    (fun text ->
      match Json.parse text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

(* --- Neutrality guard ---------------------------------------------- *)

(* The acceptance guard: profiling, time-series sampling and monitoring
   observe the machine, never the simulated world — the same seed with
   every probe on and every probe off must count identical messages,
   complete the same ops at the same virtual instants and produce
   byte-identical latency digests and oracle verdicts. *)
let test_probes_are_metrics_neutral () =
  let cfg ~probes =
    Driver.config ~seed:99 ~keys_per_node:3 ~clients:8 ~ops:120 ~n:60
      ~monitor_every_ms:(if probes then 250. else 0.)
      ~series_every_ms:(if probes then 200. else 0.)
      ~profile:probes ~oracle:true ~mix:Driver.churn_heavy ()
  in
  let off = Driver.run (cfg ~probes:false) in
  let on = Driver.run (cfg ~probes:true) in
  Alcotest.(check int) "messages unchanged" off.Driver.messages
    on.Driver.messages;
  Alcotest.(check int) "cache messages unchanged" off.Driver.cache_messages
    on.Driver.cache_messages;
  Alcotest.(check int) "retries unchanged" off.Driver.retries
    on.Driver.retries;
  Alcotest.(check (pair int int)) "same completions and failures"
    (off.Driver.completed, off.Driver.failed)
    (on.Driver.completed, on.Driver.failed);
  Alcotest.(check (float 0.)) "same virtual duration" off.Driver.duration_ms
    on.Driver.duration_ms;
  let digests r =
    Json.to_string
      (Json.Obj
         (List.map
            (fun (k, d) -> (k, Baton_obs.Timing.json d))
            r.Driver.latencies))
  in
  Alcotest.(check string) "latency digests byte-identical" (digests off)
    (digests on);
  let verdicts r =
    match r.Driver.oracle with
    | Some o -> Json.to_string (Baton_obs.Oracle.json o)
    | None -> Alcotest.fail "oracle missing"
  in
  Alcotest.(check string) "oracle verdicts byte-identical" (verdicts off)
    (verdicts on);
  (* And the probed run actually measured something. *)
  Alcotest.(check bool) "profiled run saw events" true
    (on.Driver.events_per_s > 0.);
  Alcotest.(check bool) "series sampled" true
    (match on.Driver.series with
    | Some s -> Series.recorded s > 0
    | None -> false);
  Alcotest.(check bool) "profile json present" true
    (on.Driver.profile_json <> Json.Null);
  Alcotest.(check bool) "unprofiled report stays null" true
    (off.Driver.profile_json = Json.Null && off.Driver.series = None)

(* The time series itself is deterministic: same seed, same samples,
   byte for byte. *)
let test_series_deterministic () =
  let run () =
    let cfg =
      Driver.config ~seed:7 ~keys_per_node:3 ~clients:6 ~ops:60 ~n:40
        ~series_every_ms:150. ~mix:Driver.read_heavy ()
    in
    Driver.timeseries_jsonl [ ("baton", [ Driver.run cfg ]) ]
  in
  let a = run () in
  Alcotest.(check bool) "non-empty artifact" true (String.length a > 0);
  Alcotest.(check string) "same seed, byte-identical series" a (run ())

(* --- Bench_diff ---------------------------------------------------- *)

let parse_exn text =
  match Json.parse text with
  | Ok doc -> doc
  | Error msg -> Alcotest.failf "parse: %s" msg

(* Replace the value at a leaf field everywhere it appears. *)
let rec rewrite key value = function
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) ->
           if String.equal k key then (k, value) else (k, rewrite key value v))
         fields)
  | Json.List items -> Json.List (List.map (rewrite key value) items)
  | scalar -> scalar

let bench_doc ~profile =
  let cfg =
    Driver.config ~seed:11 ~keys_per_node:2 ~clients:4 ~ops:40 ~n:20
      ~monitor_every_ms:500. ~series_every_ms:250. ~profile
      ~mix:Driver.read_heavy ()
  in
  parse_exn
    (Json.to_pretty_string (Driver.bench_json [ ("baton", [ Driver.run cfg ]) ]))

let test_bench_diff_pass () =
  let old_doc = bench_doc ~profile:true in
  let new_doc = bench_doc ~profile:true in
  match Bench_diff.compare ~max_regress_pct:99. ~old_doc ~new_doc with
  | Bench_diff.Pass { details } ->
    Alcotest.(check int) "one run, one throughput note" 1
      (List.length details);
    Alcotest.(check int) "exit 0" 0
      (Bench_diff.exit_code (Bench_diff.Pass { details }))
  | v -> Alcotest.failf "expected pass: %s" (Bench_diff.render v)

let test_bench_diff_simulated_mismatch () =
  let old_doc = bench_doc ~profile:true in
  let new_doc = rewrite "messages" (Json.Int 424242) old_doc in
  match Bench_diff.compare ~max_regress_pct:99. ~old_doc ~new_doc with
  | Bench_diff.Simulated_mismatch lines ->
    Alcotest.(check bool) "path names the drifted field" true
      (List.exists
         (fun l ->
           let re = Str.regexp_string "messages" in
           match Str.search_forward re l 0 with
           | (_ : int) -> true
           | exception Not_found -> false)
         lines);
    Alcotest.(check int) "exit 1" 1
      (Bench_diff.exit_code (Bench_diff.Simulated_mismatch lines))
  | v -> Alcotest.failf "expected simulated mismatch: %s" (Bench_diff.render v)

let test_bench_diff_ignores_profile_drift () =
  let old_doc = bench_doc ~profile:true in
  (* Wall-clock numbers always drift between runs; rewriting the
     throughput field (inside "profile") must not trip the exact
     comparison — only the tolerance check. *)
  let new_doc = rewrite "events_per_s" (Json.Float 1e9) old_doc in
  match Bench_diff.compare ~max_regress_pct:10. ~old_doc ~new_doc with
  | Bench_diff.Pass _ -> ()
  | v -> Alcotest.failf "expected pass: %s" (Bench_diff.render v)

let test_bench_diff_throughput_regress () =
  let old_doc = bench_doc ~profile:true in
  let new_doc = rewrite "events_per_s" (Json.Float 0.001) old_doc in
  match Bench_diff.compare ~max_regress_pct:50. ~old_doc ~new_doc with
  | Bench_diff.Throughput_regress lines ->
    Alcotest.(check int) "one regressed run" 1 (List.length lines);
    Alcotest.(check int) "exit 2" 2
      (Bench_diff.exit_code (Bench_diff.Throughput_regress lines))
  | v -> Alcotest.failf "expected throughput regress: %s" (Bench_diff.render v)

let test_bench_diff_schema_mismatch () =
  let old_doc = bench_doc ~profile:false in
  let new_doc = rewrite "schema" (Json.String "baton-bench-runtime-v4") old_doc in
  match Bench_diff.compare ~max_regress_pct:50. ~old_doc ~new_doc with
  | Bench_diff.Schema_mismatch { old_schema; new_schema } ->
    Alcotest.(check string) "old schema" Driver.schema_version old_schema;
    Alcotest.(check string) "new schema" "baton-bench-runtime-v4" new_schema
  | v -> Alcotest.failf "expected schema mismatch: %s" (Bench_diff.render v)

(* Unprofiled documents still gate the simulated sections; the
   throughput check reports itself skipped instead of failing. *)
let test_bench_diff_unprofiled_docs () =
  let old_doc = bench_doc ~profile:false in
  let new_doc = bench_doc ~profile:false in
  match Bench_diff.compare ~max_regress_pct:50. ~old_doc ~new_doc with
  | Bench_diff.Pass { details } ->
    Alcotest.(check bool) "notes the skipped check" true
      (List.exists
         (fun l ->
           let re = Str.regexp_string "skipped" in
           match Str.search_forward re l 0 with
           | (_ : int) -> true
           | exception Not_found -> false)
         details)
  | v -> Alcotest.failf "expected pass: %s" (Bench_diff.render v)

(* --- Engine dispatch probe ---------------------------------------- *)

let test_engine_probe_counts_events () =
  let e = Engine.create () in
  let before = ref 0 and after = ref 0 in
  Engine.set_probe e
    (Some
       {
         Engine.before = (fun () -> incr before);
         after = (fun () -> incr after);
       });
  for i = 1 to 5 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> ())
  done;
  (* A raising event must still fire the after probe. *)
  Engine.schedule e ~delay:10. (fun () -> failwith "boom");
  (try Engine.run e with Failure _ -> ());
  Engine.run e;
  Alcotest.(check int) "before per event" 6 !before;
  Alcotest.(check int) "after matches, exception included" 6 !after;
  Engine.set_probe e None;
  Engine.schedule e ~delay:1. (fun () -> ());
  Engine.run e;
  Alcotest.(check int) "detached probe sees nothing" 6 !before

let suite =
  [
    Alcotest.test_case "profile region accounting" `Quick test_profile_regions;
    Alcotest.test_case "profile nesting bills outermost" `Quick
      test_profile_nesting;
    Alcotest.test_case "profile rejects unbalanced leave" `Quick
      test_profile_leave_unopened_rejected;
    Alcotest.test_case "profile wrap survives exceptions" `Quick
      test_profile_wrap_reraises;
    Alcotest.test_case "profile json shape" `Quick test_profile_json_shape;
    Alcotest.test_case "series ring bounds + eviction" `Quick
      test_series_ring_bounds;
    Alcotest.test_case "series jsonl export" `Quick test_series_jsonl;
    Alcotest.test_case "json parse roundtrip" `Quick test_json_parse_roundtrip;
    Alcotest.test_case "json parse rejects garbage" `Quick
      test_json_parse_rejects_garbage;
    Alcotest.test_case "probes are metrics-neutral" `Quick
      test_probes_are_metrics_neutral;
    Alcotest.test_case "time series deterministic" `Quick
      test_series_deterministic;
    Alcotest.test_case "bench-diff pass" `Quick test_bench_diff_pass;
    Alcotest.test_case "bench-diff simulated mismatch" `Quick
      test_bench_diff_simulated_mismatch;
    Alcotest.test_case "bench-diff ignores profile drift" `Quick
      test_bench_diff_ignores_profile_drift;
    Alcotest.test_case "bench-diff throughput regress" `Quick
      test_bench_diff_throughput_regress;
    Alcotest.test_case "bench-diff schema mismatch" `Quick
      test_bench_diff_schema_mismatch;
    Alcotest.test_case "bench-diff unprofiled docs" `Quick
      test_bench_diff_unprofiled_docs;
    Alcotest.test_case "engine probe counts events" `Quick
      test_engine_probe_counts_events;
  ]
