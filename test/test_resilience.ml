(* Fault-injection bus + resilient routing: determinism of the fault
   model, bounded retries, routing around silent/dead peers, partial
   range answers, suspicion-driven repair, and snapshot round-trips of
   the fault state. *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Msg = Baton.Msg
module Search = Baton.Search
module Failure = Baton.Failure
module Check = Baton.Check
module Position = Baton.Position
module Bus = Baton_sim.Bus
module Metrics = Baton_sim.Metrics
module Rng = Baton_util.Rng

let build_with_keys ~seed ~n ~keys =
  let net = N.build ~seed n in
  let rng = Rng.create (seed + 1) in
  let ks = Array.init keys (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (N.insert net) ks;
  (net, ks)

(* A deterministic lookup workload; exceptions are tolerated (and
   counted) so faulty runs can be compared structurally. *)
let drive net keys ~seed ~ops =
  let rng = Rng.create seed in
  let found = ref 0 and raised = ref 0 in
  for _ = 1 to ops do
    let k = Rng.pick rng keys in
    match Search.lookup net ~from:(Net.random_peer net) k with
    | { Search.found = true; _ } -> incr found
    | { Search.found = false; _ } -> ()
    | exception (Search.Routing_stuck _ | Bus.Unreachable _ | Bus.Timeout _) ->
      incr raised
  done;
  (!found, !raised)

let test_fault_model_deterministic () =
  let run () =
    let net, keys = build_with_keys ~seed:21 ~n:80 ~keys:200 in
    Bus.set_faults (Net.bus net) ~seed:77 ~drop_rate:0.15 ~transient_rate:0.02 ();
    let outcome = drive net keys ~seed:5 ~ops:150 in
    let m = Net.metrics net in
    (outcome, Metrics.total m, Metrics.events m)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical faulty runs" true (a = b);
  let _, _, events = a in
  Alcotest.(check bool) "faults actually fired" true
    (List.mem_assoc Bus.drop_event events)

let test_retries_bounded_at_total_loss () =
  let net = N.build ~seed:23 12 in
  Bus.set_faults (Net.bus net) ~seed:1 ~drop_rate:1.0 ~transient_rate:0. ();
  let m = Net.metrics net in
  let before = Metrics.total m in
  (match Net.send net ~src:0 ~dst:1 ~kind:Msg.search_exact with
  | (_ : Node.t) -> Alcotest.fail "send succeeded at 100% loss"
  | exception Bus.Timeout dst -> Alcotest.(check int) "timed-out dst" 1 dst);
  Alcotest.(check int) "attempts = 1 + retry_limit"
    (1 + Net.retry_limit net)
    (Metrics.total m - before);
  Alcotest.(check int) "retry events" (Net.retry_limit net)
    (Metrics.event_count m Msg.ev_retry);
  Alcotest.(check int) "one give-up" 1 (Metrics.event_count m Msg.ev_give_up)

let test_retries_ride_out_transient () =
  let net = N.build ~seed:25 12 in
  Bus.set_faults (Net.bus net) ~seed:1 ~drop_rate:0. ~transient_rate:0. ();
  Bus.stun (Net.bus net) 1 ~msgs:2;
  let m = Net.metrics net in
  let before = Metrics.total m in
  let (_ : Node.t) = Net.send net ~src:0 ~dst:1 ~kind:Msg.search_exact in
  Alcotest.(check int) "two silent attempts + one delivered" 3
    (Metrics.total m - before);
  Alcotest.(check int) "two retries" 2 (Metrics.event_count m Msg.ev_retry);
  Alcotest.(check int) "transient events" 2
    (Metrics.event_count m Bus.transient_event)

let test_exact_from_every_live_node_under_mass_failure () =
  (* 20% unrepaired failures on a 200-peer tree: exact must still
     terminate (no exception) from every live origin for every
     surviving key probed. *)
  let net, keys = build_with_keys ~seed:27 ~n:200 ~keys:400 in
  let rng = Rng.create 13 in
  let victims =
    List.filter
      (fun (n : Node.t) -> (not (Node.is_root n)) && Rng.int rng 100 < 20)
      (Net.peers net)
  in
  Alcotest.(check bool) "enough victims" true (List.length victims >= 20);
  List.iter (fun v -> Baton.Failure.crash net v) victims;
  let dead_ranges = List.map (fun (v : Node.t) -> v.Node.range) victims in
  let surviving =
    Array.to_list keys
    |> List.filter (fun k ->
           not (List.exists (fun r -> Baton.Range.contains r k) dead_ranges))
  in
  let sample = Array.of_list surviving in
  let origins =
    List.filter
      (fun (n : Node.t) -> not (Bus.is_failed (Net.bus net) n.Node.id))
      (Net.peers net)
  in
  List.iteri
    (fun i (origin : Node.t) ->
      for j = 0 to 2 do
        let k = sample.(((3 * i) + j) mod Array.length sample) in
        let r = Search.lookup net ~from:origin k in
        Alcotest.(check bool) "surviving key found" true r.Search.found
      done)
    origins

let test_range_returns_partial_answer () =
  let net, _ = build_with_keys ~seed:29 ~n:60 ~keys:300 in
  let lo = 200_000_000 and hi = 800_000_000 in
  let clean = Search.range net ~from:(Net.random_peer net) ~lo ~hi in
  Alcotest.(check bool) "clean query complete" true clean.Search.complete;
  (* Kill the owner of the interval's midpoint: the adjacent-link scan
     must bridge the gap and flag the answer partial. *)
  let mid = Search.exact net ~from:(Net.random_peer net) ((lo + hi) / 2) in
  Baton.Failure.crash net mid.Search.node;
  let faulty = Search.range net ~from:(Net.random_peer net) ~lo ~hi in
  Alcotest.(check bool) "partial flagged" false faulty.Search.complete;
  let expected =
    List.filter
      (fun k -> not (Baton.Range.contains mid.Search.node.Node.range k))
      clean.Search.keys
  in
  Alcotest.(check (list int)) "partial keys = survivors" expected
    faulty.Search.keys

let test_suspicion_triggers_repair () =
  let net, _ = build_with_keys ~seed:31 ~n:100 ~keys:100 in
  Net.set_suspicion_repair net true;
  let victim =
    List.find (fun (n : Node.t) -> not (Node.is_root n)) (Net.peers net)
  in
  let vid = victim.Node.id in
  Baton.Failure.crash net victim;
  let observer =
    List.find
      (fun (n : Node.t) -> n.Node.id <> vid && not (Bus.is_failed (Net.bus net) n.Node.id))
      (Net.peers net)
  in
  (* An unreachable address convicts immediately. *)
  Failure.observe_unreachable net ~observer vid;
  Alcotest.(check bool) "victim repaired" false (Bus.is_failed (Net.bus net) vid);
  Alcotest.(check bool) "repair event" true
    (Metrics.event_count (Net.metrics net) Msg.ev_repair_triggered >= 1);
  Check.all net

let test_timeout_suspicion_probes_before_repair () =
  let net, _ = build_with_keys ~seed:33 ~n:60 ~keys:100 in
  Net.set_suspicion_repair net true;
  let peers = Net.peers net in
  let target = List.find (fun (n : Node.t) -> not (Node.is_root n)) peers in
  let observer = List.find (fun (n : Node.t) -> n.Node.id <> target.Node.id) peers in
  (* A live peer accumulating timeout suspicion is probed and
     acquitted: nothing is repaired, nothing moves. *)
  let pos_before = target.Node.pos in
  for _ = 1 to Failure.suspicion_threshold do
    Failure.observe_timeout net ~observer target.Node.id
  done;
  Alcotest.(check bool) "live peer untouched" true
    (Position.equal pos_before target.Node.pos
    && Option.is_some (Net.peer_opt net target.Node.id));
  Alcotest.(check int) "no repair" 0
    (Metrics.event_count (Net.metrics net) Msg.ev_repair_triggered);
  (* The same observations against a genuinely dead peer convict it. *)
  Baton.Failure.crash net target;
  for _ = 1 to Failure.suspicion_threshold do
    Failure.observe_timeout net ~observer target.Node.id
  done;
  Alcotest.(check bool) "dead peer repaired" false
    (Bus.is_failed (Net.bus net) target.Node.id);
  Check.all net

let test_snapshot_roundtrips_fault_state () =
  let tmp = Filename.concat (Filename.get_temp_dir_name ()) "baton_fault.snap" in
  let net, keys = build_with_keys ~seed:35 ~n:60 ~keys:200 in
  Bus.set_faults (Net.bus net) ~seed:99 ~drop_rate:0.2 ~transient_rate:0.05 ();
  Net.save net tmp;
  let twin = Net.load tmp in
  Sys.remove tmp;
  Alcotest.(check bool) "fault model restored" true
    (Bus.faults_enabled (Net.bus twin));
  (match Bus.fault_config (Net.bus twin) with
  | Some c ->
    Alcotest.(check (float 1e-9)) "drop rate" 0.2 c.Bus.drop_rate;
    Alcotest.(check (float 1e-9)) "transient rate" 0.05 c.Bus.transient_rate
  | None -> Alcotest.fail "missing fault config");
  (* Same seed, same ops: the original and the restored network must
     replay the injected faults identically — identical message counts
     and identical event counters. *)
  let a = drive net keys ~seed:41 ~ops:200 in
  let b = drive twin keys ~seed:41 ~ops:200 in
  Alcotest.(check (pair int int)) "identical outcomes" a b;
  Alcotest.(check int) "identical message counts"
    (Metrics.total (Net.metrics net))
    (Metrics.total (Net.metrics twin));
  Alcotest.(check bool) "identical event counters" true
    (Metrics.events (Net.metrics net) = Metrics.events (Net.metrics twin))

let test_notify_loss_is_counted () =
  let net = N.build ~seed:37 30 in
  let m = Net.metrics net in
  let victim = List.find (fun (n : Node.t) -> not (Node.is_root n)) (Net.peers net) in
  Baton.Failure.crash net victim;
  let src =
    (List.find (fun (n : Node.t) -> n.Node.id <> victim.Node.id) (Net.peers net)).Node.id
  in
  Net.notify net ~src ~dst:victim.Node.id ~kind:Msg.join_update (fun _ ->
      Alcotest.fail "delivered to a failed peer");
  Alcotest.(check bool) "dropped notify counted" true
    (Metrics.event_count m Msg.ev_notify_dropped >= 1)

let suite =
  [
    Alcotest.test_case "fault model deterministic per seed" `Quick
      test_fault_model_deterministic;
    Alcotest.test_case "retries bounded at 100% loss" `Quick
      test_retries_bounded_at_total_loss;
    Alcotest.test_case "retries ride out transients" `Quick
      test_retries_ride_out_transient;
    Alcotest.test_case "exact everywhere under 20% failures" `Quick
      test_exact_from_every_live_node_under_mass_failure;
    Alcotest.test_case "range returns partial answer" `Quick
      test_range_returns_partial_answer;
    Alcotest.test_case "suspicion triggers repair" `Quick
      test_suspicion_triggers_repair;
    Alcotest.test_case "timeout suspicion probes first" `Quick
      test_timeout_suspicion_probes_before_repair;
    Alcotest.test_case "snapshot round-trips fault state" `Quick
      test_snapshot_roundtrips_fault_state;
    Alcotest.test_case "lost notifications are counted" `Quick
      test_notify_loss_is_counted;
  ]
