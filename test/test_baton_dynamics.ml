(* Concurrent churn via deferred notifications (Section V-E). *)

module N = Baton.Network
module Net = Baton.Net
module Join = Baton.Join
module Leave = Baton.Leave
module Search = Baton.Search
module Check = Baton.Check
module Rng = Baton_util.Rng

let test_deferred_joins_recover_on_flush () =
  let net = N.build ~seed:1 60 in
  Net.set_defer net true;
  for _ = 1 to 10 do
    ignore (Join.join net ~via:(Net.random_peer net))
  done;
  Net.flush_deferred net;
  Alcotest.(check int) "all joined" 70 (Net.size net);
  (* Structure is sound after the flush; balance may transiently differ
     (the paper accepts extra cost, not corruption), so check the
     structural and data invariants. *)
  Check.tree_shape net;
  Check.ranges net;
  Check.data_placement net;
  Check.theorem2 net

let test_deferred_leaves_recover_on_flush () =
  let net = N.build ~seed:2 60 in
  let rng = Rng.create 3 in
  Net.set_defer net true;
  for _ = 1 to 10 do
    let ids = Net.live_ids net in
    ignore (Leave.leave net (Net.peer net (Rng.pick rng ids)))
  done;
  Net.flush_deferred net;
  Alcotest.(check int) "all left" 50 (Net.size net);
  Check.tree_shape net;
  Check.ranges net;
  Check.data_placement net

let test_searches_during_staleness_still_answer () =
  let net = N.build ~seed:3 80 in
  let rng = Rng.create 5 in
  let keys = Array.init 200 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (N.insert net) keys;
  Net.set_defer net true;
  for _ = 1 to 8 do
    ignore (Join.join net ~via:(Net.random_peer net));
    let ids = Net.live_ids net in
    ignore (Leave.leave net (Net.peer net (Rng.pick rng ids)))
  done;
  (* Keys stay findable mid-staleness, allowing a client one retry from
     a different origin (the paper's point is extra messages, not
     unavailability; a dead-end on stale links is re-issued). *)
  let misses = ref 0 in
  Array.iter
    (fun k ->
      let attempt () =
        (Search.lookup net ~from:(Net.random_peer net) k).Search.found
      in
      if not (attempt () || attempt ()) then incr misses)
    keys;
  Alcotest.(check bool)
    (Printf.sprintf "%d misses of %d" !misses (Array.length keys))
    true
    (!misses * 50 <= Array.length keys);
  Net.flush_deferred net;
  Check.ranges net;
  Check.data_placement net

let test_concurrent_batches_cost_more () =
  (* The headline of Fig 8(i): a deferred batch costs at least as much
     as the sequential run of the same operations. *)
  let cost ~concurrent =
    let net = N.build ~seed:4 100 in
    let m = Net.metrics net in
    let cp = Baton_sim.Metrics.checkpoint m in
    Net.set_defer net concurrent;
    for _ = 1 to 16 do
      ignore (Join.join net ~via:(Net.random_peer net))
    done;
    Net.flush_deferred net;
    Baton_sim.Metrics.since m cp
  in
  let seq = cost ~concurrent:false and con = cost ~concurrent:true in
  Alcotest.(check bool)
    (Printf.sprintf "concurrent %d >= sequential %d" con seq)
    true (con >= seq)

let test_flush_is_idempotent () =
  let net = N.build ~seed:5 30 in
  Net.set_defer net true;
  ignore (Join.join net ~via:(Net.random_peer net));
  Net.flush_deferred net;
  Net.flush_deferred net;
  Alcotest.(check bool) "defer mode off after flush" false (Net.deferring net);
  Check.all net

let test_stale_then_quiescent_converges () =
  (* After the batch settles and one more round of (sequential) churn,
     the strict link invariant holds again everywhere. *)
  let net = N.build ~seed:6 50 in
  let rng = Rng.create 7 in
  Net.set_defer net true;
  for _ = 1 to 6 do
    ignore (Join.join net ~via:(Net.random_peer net));
    let ids = Net.live_ids net in
    ignore (Leave.leave net (Net.peer net (Rng.pick rng ids)))
  done;
  Net.flush_deferred net;
  Check.ranges net;
  Check.tree_shape net

let suite =
  [
    Alcotest.test_case "deferred joins recover" `Quick test_deferred_joins_recover_on_flush;
    Alcotest.test_case "deferred leaves recover" `Quick test_deferred_leaves_recover_on_flush;
    Alcotest.test_case "searches during staleness" `Quick test_searches_during_staleness_still_answer;
    Alcotest.test_case "concurrency costs more" `Quick test_concurrent_batches_cost_more;
    Alcotest.test_case "flush idempotent" `Quick test_flush_is_idempotent;
    Alcotest.test_case "staleness converges" `Quick test_stale_then_quiescent_converges;
  ]
