(* Forced joins/leaves with AVL-style restructuring (Section III-E). *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Join = Baton.Join
module Restructure = Baton.Restructure
module Check = Baton.Check
module Histogram = Baton_util.Histogram
module Store = Baton_util.Sorted_store

let all_keys net =
  List.concat_map (fun (n : Node.t) -> Store.to_list n.Node.store) (Net.peers net)
  |> List.sort compare

(* A leaf whose tables are not full: forcing a child under it violates
   Theorem 1 and must trigger a shift. *)
let find_unsafe_leaf net =
  List.find_opt
    (fun (n : Node.t) -> Node.is_leaf n && not (Node.tables_full n))
    (Check.in_order_nodes net)

let find_safe_leaf net =
  List.find_opt
    (fun (n : Node.t) -> Node.is_leaf n && Node.tables_full n)
    (Check.in_order_nodes net)

let test_forced_join_safe_case () =
  let net = N.build ~seed:1 31 in
  (* A complete-ish tree: find a leaf with full tables. *)
  match find_safe_leaf net with
  | None -> Alcotest.fail "expected a safe leaf"
  | Some leaf ->
    for k = 1 to 20 do
      Store.insert leaf.Node.store
        (leaf.Node.range.Baton.Range.lo + (k * max 1 (Baton.Range.width leaf.Node.range / 32)))
    done;
    let y = Restructure.forced_join net ~parent:leaf (Net.fresh_id net) in
    Alcotest.(check bool) "joined as left child" true
      (Baton.Position.equal y.Node.pos (Baton.Position.left_child leaf.Node.pos));
    Alcotest.(check bool) "took lower half of content" true (Node.load y >= 9);
    Check.all net

let test_forced_join_triggers_shift () =
  let net = N.build ~seed:2 40 in
  match find_unsafe_leaf net with
  | None -> Alcotest.fail "expected an unsafe leaf at non-power-of-two size"
  | Some leaf ->
    let before = Histogram.total (Net.shift_histogram net) in
    let _y = Restructure.forced_join net ~parent:leaf (Net.fresh_id net) in
    let after = Histogram.total (Net.shift_histogram net) in
    Alcotest.(check bool) "shift recorded" true (after > before);
    Alcotest.(check int) "size grew" 41 (Net.size net);
    Check.all net

let test_forced_join_preserves_data () =
  let net = N.build ~seed:3 37 in
  let rng = Baton_util.Rng.create 5 in
  for _ = 1 to 300 do
    N.insert net (Baton_util.Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
  done;
  let before = all_keys net in
  (match find_unsafe_leaf net with
  | None -> Alcotest.fail "expected an unsafe leaf"
  | Some leaf -> ignore (Restructure.forced_join net ~parent:leaf (Net.fresh_id net)));
  Alcotest.(check (list int)) "no data lost in shift" before (all_keys net);
  Check.all net

let test_forced_leave_safe_case () =
  let net = N.build ~seed:4 40 in
  (* A deepest-level leaf is always safely removable. *)
  let deepest =
    List.fold_left
      (fun best (n : Node.t) ->
        match best with
        | None -> Some n
        | Some (b : Node.t) -> if Node.level n > Node.level b then Some n else best)
      None (Net.peers net)
  in
  let victim = Option.get deepest in
  (* Hand its data off first, as the balancer does. *)
  (match Node.adjacent victim `Left with
  | Some l ->
    let ln = Net.peer net l.Baton.Link.peer in
    Store.absorb ln.Node.store victim.Node.store;
    ln.Node.range <- Baton.Range.merge ln.Node.range victim.Node.range
  | None -> (
    match Node.adjacent victim `Right with
    | Some r ->
      let rn = Net.peer net r.Baton.Link.peer in
      Store.absorb rn.Node.store victim.Node.store;
      rn.Node.range <- Baton.Range.merge rn.Node.range victim.Node.range
    | None -> Alcotest.fail "victim has no adjacent"));
  Restructure.forced_leave net victim;
  Alcotest.(check int) "size shrank" 39 (Net.size net);
  Check.all net

let test_forced_leave_with_shift () =
  (* Remove an internal node: the hole must be filled by shifting. *)
  let net = N.build ~seed:5 45 in
  let victim =
    List.find
      (fun (n : Node.t) -> (not (Node.is_leaf n)) && not (Node.is_root n))
      (Net.peers net)
  in
  (* Hand off its data to its in-order predecessor. *)
  (match Node.adjacent victim `Left with
  | Some l ->
    let ln = Net.peer net l.Baton.Link.peer in
    Store.absorb ln.Node.store victim.Node.store;
    ln.Node.range <- Baton.Range.merge ln.Node.range victim.Node.range
  | None ->
    let r = Option.get (Node.adjacent victim `Right) in
    let rn = Net.peer net r.Baton.Link.peer in
    Store.absorb rn.Node.store victim.Node.store;
    rn.Node.range <- Baton.Range.merge rn.Node.range victim.Node.range);
  let before = Histogram.total (Net.shift_histogram net) in
  Restructure.forced_leave net victim;
  Alcotest.(check bool) "shift recorded" true
    (Histogram.total (Net.shift_histogram net) > before);
  Alcotest.(check int) "size shrank" 44 (Net.size net);
  Check.all net

let test_shift_sizes_recorded () =
  let net = N.build ~seed:6 33 in
  for _ = 1 to 5 do
    match find_unsafe_leaf net with
    | Some leaf -> ignore (Restructure.forced_join net ~parent:leaf (Net.fresh_id net))
    | None -> ()
  done;
  let h = Net.shift_histogram net in
  Alcotest.(check bool) "events recorded" true (Histogram.total h > 0);
  List.iter
    (fun (size, _) -> Alcotest.(check bool) "positive shift size" true (size >= 1))
    (Histogram.bins h)

let test_repeated_forced_churn_stays_balanced () =
  let net = N.build ~seed:7 20 in
  for i = 0 to 30 do
    (match find_unsafe_leaf net with
    | Some leaf -> ignore (Restructure.forced_join net ~parent:leaf (Net.fresh_id net))
    | None -> (
      match find_safe_leaf net with
      | Some leaf -> ignore (Restructure.forced_join net ~parent:leaf (Net.fresh_id net))
      | None -> ()));
    if i mod 5 = 0 then Check.all net
  done;
  Check.all net

let suite =
  [
    Alcotest.test_case "forced join safe" `Quick test_forced_join_safe_case;
    Alcotest.test_case "forced join shift" `Quick test_forced_join_triggers_shift;
    Alcotest.test_case "forced join keeps data" `Quick test_forced_join_preserves_data;
    Alcotest.test_case "forced leave safe" `Quick test_forced_leave_safe_case;
    Alcotest.test_case "forced leave shift" `Quick test_forced_leave_with_shift;
    Alcotest.test_case "shift sizes recorded" `Quick test_shift_sizes_recorded;
    Alcotest.test_case "repeated forced churn" `Quick test_repeated_forced_churn_stays_balanced;
  ]
