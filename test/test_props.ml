(* Cross-cutting property tests: random mixed workloads must preserve
   every invariant of Check and never lose a committed key. *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Join = Baton.Join
module Leave = Baton.Leave
module Failure = Baton.Failure
module Update = Baton.Update
module Search = Baton.Search
module Balance = Baton.Balance
module Check = Baton.Check
module Rng = Baton_util.Rng

type op = Op_join | Op_leave | Op_fail | Op_insert of int | Op_delete | Op_query

let gen_op =
  let open QCheck2.Gen in
  frequency
    [
      (3, return Op_join);
      (2, return Op_leave);
      (1, return Op_fail);
      (6, map (fun k -> Op_insert k) (int_range 1 999_999_999));
      (2, return Op_delete);
      (4, return Op_query);
    ]

let print_op = function
  | Op_join -> "join"
  | Op_leave -> "leave"
  | Op_fail -> "fail"
  | Op_insert k -> Printf.sprintf "insert %d" k
  | Op_delete -> "delete"
  | Op_query -> "query"

(* Replays a script and verifies invariants hold throughout, that keys
   stored at surviving nodes are queryable, and that deletes remove
   exactly what they claim. Keys on crashed nodes are forgotten, as the
   paper's protocol loses them (no replication). *)
let run_script ~salt ops =
  let net = N.build ~seed:(7000 + salt) 12 in
  let rng = Rng.create salt in
  let live_keys = ref [] in
  let random_victim () =
    let ids = Net.live_ids net in
    Net.peer net (Rng.pick rng ids)
  in
  List.iter
    (fun op ->
      match op with
      | Op_join -> ignore (Join.join net ~via:(Net.random_peer net))
      | Op_leave -> if Net.size net > 1 then ignore (Leave.leave net (random_victim ()))
      | Op_fail ->
        if Net.size net > 2 then begin
          let v = random_victim () in
          let lost = Baton_util.Sorted_store.to_list v.Node.store in
          Failure.crash_and_repair net v;
          live_keys := List.filter (fun k -> not (List.mem k lost)) !live_keys
        end
      | Op_insert k ->
        ignore (Update.insert net ~from:(Net.random_peer net) k);
        live_keys := k :: !live_keys
      | Op_delete -> (
        match !live_keys with
        | [] -> ()
        | k :: rest ->
          let st = Update.delete net ~from:(Net.random_peer net) k in
          if not st.Update.found then failwith "delete lost a live key";
          live_keys := rest)
      | Op_query -> (
        match !live_keys with
        | [] -> ()
        | keys ->
          let k = List.nth keys (Rng.int rng (List.length keys)) in
          let r = Search.lookup net ~from:(Net.random_peer net) k in
          if not r.Search.found then
            failwith ("lookup lost key " ^ string_of_int k)))
    ops;
  Check.all net;
  true

let mixed_workload_prop =
  let open QCheck2 in
  Test.make ~name:"mixed churn+data workload preserves all invariants" ~count:30
    ~print:(fun (ops, salt) ->
      Printf.sprintf "salt=%d ops=[%s]" salt
        (String.concat "; " (List.map print_op ops)))
    Gen.(pair (list_size (int_bound 60) gen_op) (int_bound 10_000))
    (fun (ops, salt) -> run_script ~salt ops)

let balanced_workload_prop =
  let open QCheck2 in
  Test.make ~name:"balancing under random skew preserves invariants" ~count:10
    Gen.(pair (int_range 2 30) (int_bound 10_000))
    (fun (universe, salt) ->
      let net = N.build ~seed:(8000 + salt) 25 in
      let cfg = Balance.default_config ~capacity:30 in
      let gen = Baton_workload.Datagen.zipf ~universe (Rng.create salt) in
      for _ = 1 to 800 do
        let k = Baton_workload.Datagen.next gen in
        let st = Update.insert net ~from:(Net.random_peer net) k in
        ignore (Balance.maybe_balance net cfg (Net.peer net st.Update.node))
      done;
      Check.all net;
      true)

let height_bound_prop =
  let open QCheck2 in
  Test.make ~name:"height stays within the AVL bound for any size" ~count:15
    Gen.(int_range 1 300)
    (fun n ->
      let net = N.build ~seed:(6000 + n) n in
      Check.height_bound net;
      let nodes = Check.in_order_nodes net in
      List.length nodes = n)

let range_tiling_prop =
  let open QCheck2 in
  Test.make ~name:"ranges tile the domain after arbitrary churn" ~count:15
    Gen.(pair (int_range 2 80) (int_bound 10_000))
    (fun (n, salt) ->
      let net = N.build ~seed:(5000 + salt) n in
      let rng = Rng.create salt in
      for _ = 1 to n / 2 do
        let ids = Net.live_ids net in
        ignore (Leave.leave net (Net.peer net (Rng.pick rng ids)));
        ignore (Join.join net ~via:(Net.random_peer net))
      done;
      Check.ranges net;
      Check.all net;
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest mixed_workload_prop;
    QCheck_alcotest.to_alcotest balanced_workload_prop;
    QCheck_alcotest.to_alcotest height_bound_prop;
    QCheck_alcotest.to_alcotest range_tiling_prop;
  ]

(* Long mixed soak: one large deterministic random workload over a
   mid-sized network with full invariant checks at intervals. Exercises
   the interactions (join+balance+failure+restructure) that short
   per-feature tests cannot reach. *)
let soak_test () =
  let net = N.build ~seed:424242 100 in
  let rng = Rng.create 31337 in
  let cfg = Balance.default_config ~capacity:60 in
  let gen = Baton_workload.Datagen.zipf (Rng.create 27182) in
  let live_keys = ref [] in
  for step = 1 to 2_000 do
    (match Rng.int rng 100 with
    | r when r < 8 -> ignore (Join.join net ~via:(Net.random_peer net))
    | r when r < 14 ->
      if Net.size net > 10 then begin
        let ids = Net.live_ids net in
        let victim = Net.peer net (Rng.pick rng ids) in
        let held = Baton_util.Sorted_store.to_list victim.Node.store in
        ignore held;
        ignore (Leave.leave net victim)
      end
    | r when r < 17 ->
      if Net.size net > 10 then begin
        let ids = Net.live_ids net in
        let victim = Net.peer net (Rng.pick rng ids) in
        let lost = Baton_util.Sorted_store.to_list victim.Node.store in
        Failure.crash_and_repair net victim;
        live_keys := List.filter (fun k -> not (List.mem k lost)) !live_keys
      end
    | r when r < 75 ->
      let k = Baton_workload.Datagen.next gen in
      let st = Update.insert net ~from:(Net.random_peer net) k in
      ignore (Balance.maybe_balance net cfg (Net.peer net st.Update.node));
      live_keys := k :: !live_keys
    | r when r < 85 -> (
      match !live_keys with
      | [] -> ()
      | k :: rest ->
        let st = Update.delete net ~from:(Net.random_peer net) k in
        if not st.Update.found then Alcotest.failf "soak: delete lost key %d" k;
        live_keys := rest)
    | _ -> (
      match !live_keys with
      | [] -> ()
      | keys ->
        let k = List.nth keys (Rng.int rng (List.length keys)) in
        let r = Search.lookup net ~from:(Net.random_peer net) k in
        if not r.Search.found then Alcotest.failf "soak: lookup lost key %d" k));
    if step mod 250 = 0 then Check.all net
  done;
  Check.all net;
  Alcotest.(check bool) "network alive" true (Net.size net > 10)

let suite =
  suite @ [ Alcotest.test_case "2000-op mixed soak" `Slow soak_test ]
