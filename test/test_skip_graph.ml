(* The Skip Graph overlay: structural units, crash recovery, and
   qcheck properties tying search cost, level-0 order and range answers
   to the Aspnes & Shah guarantees. *)

module SG = Skip_graph
module Rng = Baton_util.Rng
module Sorted_store = Baton_util.Sorted_store
module Oracle = Baton_obs.Oracle

let domain_lo = 1
let domain_hi = 1_000_000_000

let build ?(seed = 42) n =
  let g = SG.create ~seed ~domain_lo ~domain_hi () in
  for _ = 1 to n do
    ignore (SG.join g : SG.join_stats)
  done;
  g

let random_keys rng count =
  List.init count (fun _ -> Rng.int_in_range rng ~lo:domain_lo ~hi:(domain_hi - 1))

(* --- Units --------------------------------------------------------- *)

let test_build_and_audit () =
  let g = build 64 in
  Alcotest.(check int) "size" 64 (SG.size g);
  Alcotest.(check bool) "has upper levels" true (SG.levels g >= 2);
  Alcotest.(check bool) "levels bounded" true (SG.levels g <= SG.max_levels);
  Alcotest.(check int) "peer orders agree on population" (SG.size g)
    (Array.length (SG.peer_ids_by_key g));
  SG.check g

let test_join_pays_messages () =
  let g = build 20 in
  let st = SG.join g in
  Alcotest.(check bool) "join searched" true (st.SG.search_msgs > 0);
  Alcotest.(check bool) "join spliced" true (st.SG.update_msgs > 0);
  SG.check g

let test_data_roundtrip () =
  let g = build 40 in
  let keys = random_keys (Rng.create 5) 200 in
  List.iter (fun k -> ignore (SG.insert g k : int)) keys;
  let before = Baton_sim.Metrics.total (SG.metrics g) in
  List.iter
    (fun k ->
      let found, hops = SG.lookup g k in
      Alcotest.(check bool) "found" true found;
      (* Zero hops is legal — the random start peer may own the key. *)
      Alcotest.(check bool) "hops non-negative" true (hops >= 0))
    keys;
  Alcotest.(check bool) "the batch paid messages" true
    (Baton_sim.Metrics.total (SG.metrics g) > before);
  List.iter
    (fun k ->
      let deleted, _ = SG.delete g k in
      Alcotest.(check bool) "deleted" true deleted)
    keys;
  let found, _ = SG.lookup g (List.hd keys) in
  Alcotest.(check bool) "gone" false found;
  SG.check g

let test_range_matches_filter () =
  let g = build 48 in
  let keys = random_keys (Rng.create 9) 400 in
  ignore (SG.bulk_insert g keys : int);
  let lo = 250_000_000 and hi = 600_000_000 in
  let expect =
    List.sort_uniq compare (List.filter (fun k -> k >= lo && k <= hi) keys)
  in
  let got, hops = SG.range_query g ~lo ~hi in
  Alcotest.(check (list int)) "range = filtered keys" expect got;
  Alcotest.(check bool) "range paid hops" true (hops > 0);
  SG.check g

let test_bulk_insert_places_all () =
  let g = build 32 in
  let keys = random_keys (Rng.create 13) 300 in
  ignore (SG.bulk_insert g keys : int);
  List.iter
    (fun k ->
      Alcotest.(check bool) "bulk key found" true (fst (SG.lookup g k)))
    keys;
  SG.check g

let test_leave_hands_data_over () =
  let g = build 24 in
  let keys = random_keys (Rng.create 17) 150 in
  ignore (SG.bulk_insert g keys : int);
  let rng = Rng.create 19 in
  for _ = 1 to 12 do
    ignore (SG.leave g (Rng.pick rng (SG.peer_ids g)) : SG.leave_stats)
  done;
  Alcotest.(check int) "peers departed" 12 (24 - SG.size g);
  List.iter
    (fun k ->
      Alcotest.(check bool) "key survived departures" true
        (fst (SG.lookup g k)))
    keys;
  SG.check g

let test_crash_lazy_repair () =
  let g = build 40 in
  let keys = random_keys (Rng.create 23) 200 in
  ignore (SG.bulk_insert g keys : int);
  let rng = Rng.create 29 in
  let lost = ref [] in
  for _ = 1 to 8 do
    let victim = Rng.pick rng (SG.peer_ids g) in
    lost := SG.crash g victim @ !lost
  done;
  Alcotest.(check int) "population shrank" 32 (SG.size g);
  (* Keys on corpses are gone; every other key stays reachable while
     routing splices the corpses out. *)
  List.iter
    (fun k ->
      let found, _ = SG.lookup g k in
      Alcotest.(check bool)
        (Printf.sprintf "key %d %s" k
           (if List.mem k !lost then "lost with its peer" else "survives"))
        (not (List.mem k !lost))
        found)
    keys;
  SG.check g;
  (* A fresh join after the carnage still builds a sound structure. *)
  ignore (SG.join g : SG.join_stats);
  SG.check g

let test_determinism () =
  let script seed =
    let g = build ~seed 30 in
    let rng = Rng.create 31 in
    ignore (SG.bulk_insert g (random_keys rng 100) : int);
    for _ = 1 to 50 do
      ignore (SG.lookup g (Rng.int_in_range rng ~lo:domain_lo ~hi:domain_hi))
    done;
    ignore (SG.crash g (Rng.pick rng (SG.peer_ids g)) : int list);
    for _ = 1 to 20 do
      ignore (SG.lookup g (Rng.int_in_range rng ~lo:domain_lo ~hi:domain_hi))
    done;
    ( Baton_sim.Metrics.total (SG.metrics g),
      SG.peer_ids g,
      SG.peer_ids_by_key g )
  in
  let m1, ids1, byk1 = script 71 and m2, ids2, byk2 = script 71 in
  Alcotest.(check int) "same seed, same messages" m1 m2;
  Alcotest.(check (array int)) "same peers" ids1 ids2;
  Alcotest.(check (array int)) "same key order" byk1 byk2;
  let m3, _, _ = script 72 in
  Alcotest.(check bool) "different seed differs somewhere" true (m1 <> m3)

(* The adversarial episode harness (shared with the overlay-matrix
   experiment): partition, gray peers and a correlated crash burst must
   leave zero oracle violations — failures are visible, never wrong
   answers. *)
let test_adversarial_zero_violations () =
  let completed, failed, o, messages =
    Baton_experiments.Exp_overlay_matrix.skip_graph_adversarial ~seed:3
      ~n:60 ~keys_per_node:3 ~range_span:20_000_000 ~ops:120
  in
  Alcotest.(check int) "all ops accounted" 120 (completed + failed);
  Alcotest.(check bool) "most ops completed" true (completed > 60);
  Alcotest.(check bool) "oracle judged completions" true (Oracle.checked o > 0);
  Alcotest.(check int) "zero violations" 0 (Oracle.violation_count o);
  Alcotest.(check bool) "traffic counted" true (messages > 0)

(* --- Properties ---------------------------------------------------- *)

(* Random churn scripts: every committed key stays queryable unless its
   holder crashed, and the full structural audit (level-0 sorted and
   gap-free, prefix-class lists, heights, placement) holds at the end.
   [check] resolving links through corpses is exactly the lazy-repair
   invariant. *)
type op = Op_join | Op_leave | Op_crash | Op_insert of int | Op_lookup

let gen_op =
  let open QCheck2.Gen in
  frequency
    [
      (3, return Op_join);
      (2, return Op_leave);
      (1, return Op_crash);
      (5, map (fun k -> Op_insert k) (int_range domain_lo (domain_hi - 1)));
      (4, return Op_lookup);
    ]

let print_op = function
  | Op_join -> "join"
  | Op_leave -> "leave"
  | Op_crash -> "crash"
  | Op_insert k -> Printf.sprintf "insert %d" k
  | Op_lookup -> "lookup"

let run_script ~salt ops =
  let g = build ~seed:(9000 + salt) 12 in
  let rng = Rng.create salt in
  let live = ref [] in
  List.iter
    (fun op ->
      match op with
      | Op_join -> ignore (SG.join g : SG.join_stats)
      | Op_leave ->
        if SG.size g > 1 then
          ignore (SG.leave g (Rng.pick rng (SG.peer_ids g)) : SG.leave_stats)
      | Op_crash ->
        if SG.size g > 2 then begin
          let lost = SG.crash g (Rng.pick rng (SG.peer_ids g)) in
          live := List.filter (fun k -> not (List.mem k lost)) !live
        end
      | Op_insert k ->
        ignore (SG.insert g k : int);
        live := k :: !live
      | Op_lookup -> (
        match !live with
        | [] -> ()
        | keys ->
          let k = List.nth keys (Rng.int rng (List.length keys)) in
          if not (fst (SG.lookup g k)) then
            failwith ("lookup lost key " ^ string_of_int k)))
    ops;
  SG.check g;
  true

let churn_prop =
  let open QCheck2 in
  Test.make ~name:"random churn preserves the full structural audit"
    ~count:30
    ~print:(fun (ops, salt) ->
      Printf.sprintf "salt=%d ops=[%s]" salt
        (String.concat "; " (List.map print_op ops)))
    Gen.(pair (list_size (int_bound 60) gen_op) (int_bound 10_000))
    (fun (ops, salt) -> run_script ~salt ops)

(* Exact search is O(log n) with high probability; averaged over a
   query batch the constant is small. The bound leaves slack for the
   worst seeds while still failing on anything linear. *)
let hops_prop =
  let open QCheck2 in
  Test.make ~name:"mean exact-search hops stay logarithmic" ~count:8
    ~print:(fun (n, salt) -> Printf.sprintf "n=%d salt=%d" n salt)
    Gen.(pair (int_range 16 300) (int_bound 10_000))
    (fun (n, salt) ->
      let g = build ~seed:(4000 + salt) n in
      let rng = Rng.create salt in
      let keys = random_keys rng (3 * n) in
      ignore (SG.bulk_insert g keys : int);
      let q = 50 in
      let total = ref 0 in
      for _ = 1 to q do
        let k = List.nth keys (Rng.int rng (List.length keys)) in
        total := !total + snd (SG.lookup g k)
      done;
      let mean = float_of_int !total /. float_of_int q in
      let bound = (2. *. (log (float_of_int n) /. log 2.)) +. 5. in
      if mean > bound then
        QCheck2.Test.fail_reportf "mean hops %.2f > bound %.2f at n=%d" mean
          bound n;
      true)

(* Range answers against a [Sorted_store] model, under churn and
   crashes: whatever keys the model still holds inside [lo, hi] is
   exactly the query answer. *)
let range_model_prop =
  let open QCheck2 in
  Test.make ~name:"range answers match a Sorted_store model under churn"
    ~count:15
    ~print:(fun (salt, spans) ->
      Printf.sprintf "salt=%d spans=%d" salt (List.length spans))
    Gen.(
      pair (int_bound 10_000)
        (list_size (int_range 1 8)
           (pair
              (int_range domain_lo (domain_hi - 50_000_000))
              (int_range 1 50_000_000))))
    (fun (salt, spans) ->
      let g = build ~seed:(2000 + salt) 20 in
      let rng = Rng.create salt in
      let model = Sorted_store.create () in
      let add k = ignore (SG.insert g k : int); Sorted_store.insert model k in
      List.iter add (random_keys rng 150);
      (* Churn between query rounds, mirroring losses in the model. *)
      List.iter
        (fun (lo, span) ->
          (match Rng.int rng 3 with
          | 0 -> ignore (SG.join g : SG.join_stats)
          | 1 ->
            if SG.size g > 1 then
              ignore
                (SG.leave g (Rng.pick rng (SG.peer_ids g)) : SG.leave_stats)
          | _ ->
            if SG.size g > 2 then
              List.iter
                (fun k -> ignore (Sorted_store.remove model k : bool))
                (SG.crash g (Rng.pick rng (SG.peer_ids g))));
          let hi = lo + span in
          let got, _ = SG.range_query g ~lo ~hi in
          let expect = Sorted_store.keys_in model ~lo ~hi in
          if got <> expect then
            QCheck2.Test.fail_reportf
              "range [%d, %d]: got %d keys, model has %d" lo hi
              (List.length got) (List.length expect))
        spans;
      SG.check g;
      true)

let suite =
  [
    Alcotest.test_case "build and audit" `Quick test_build_and_audit;
    Alcotest.test_case "join pays messages" `Quick test_join_pays_messages;
    Alcotest.test_case "data roundtrip" `Quick test_data_roundtrip;
    Alcotest.test_case "range matches filter" `Quick test_range_matches_filter;
    Alcotest.test_case "bulk insert places all" `Quick
      test_bulk_insert_places_all;
    Alcotest.test_case "leave hands data over" `Quick
      test_leave_hands_data_over;
    Alcotest.test_case "crash + lazy repair" `Quick test_crash_lazy_repair;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "adversarial run, zero violations" `Quick
      test_adversarial_zero_violations;
    QCheck_alcotest.to_alcotest churn_prop;
    QCheck_alcotest.to_alcotest hops_prop;
    QCheck_alcotest.to_alcotest range_model_prop;
  ]
