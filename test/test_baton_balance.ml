(* Load balancing (Section IV-D). *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Balance = Baton.Balance
module Update = Baton.Update
module Check = Baton.Check
module Rng = Baton_util.Rng
module Store = Baton_util.Sorted_store
module Datagen = Baton_workload.Datagen

let all_keys net =
  List.concat_map (fun (n : Node.t) -> Store.to_list n.Node.store) (Net.peers net)
  |> List.sort compare

let test_default_config () =
  let cfg = Balance.default_config ~capacity:100 in
  Alcotest.(check int) "light load" 25 cfg.Balance.light_load;
  Alcotest.check_raises "tiny capacity"
    (Invalid_argument "Balance.default_config: capacity too small") (fun () ->
      ignore (Balance.default_config ~capacity:2))

let test_under_capacity_no_action () =
  let net = N.build ~seed:1 20 in
  let cfg = Balance.default_config ~capacity:100 in
  N.insert net 500_000_000;
  let node = (Baton.Search.exact net ~from:(Net.random_peer net) 500_000_000).Baton.Search.node in
  Alcotest.(check bool) "no balancing needed" false (Balance.maybe_balance net cfg node)

let test_adjacent_balancing_moves_load () =
  let net = N.build ~seed:2 30 in
  (* Overload one node directly, then balance with its adjacent. *)
  let node =
    List.find (fun (n : Node.t) -> Option.is_some (Node.adjacent n `Right)) (Net.peers net)
  in
  let r = node.Node.range in
  let width = Baton.Range.width r in
  for k = 0 to 199 do
    Store.insert node.Node.store (r.Baton.Range.lo + (k mod max 1 (width - 1)))
  done;
  let before_total = List.length (all_keys net) in
  let moved = Balance.balance_with_adjacent net node `Right in
  Alcotest.(check bool) "load moved" true moved;
  Alcotest.(check int) "no data lost" before_total (List.length (all_keys net));
  Alcotest.(check bool) "node relieved" true (Node.load node <= 120);
  Check.all net

let test_balance_preserves_data_and_invariants () =
  let net = N.build ~seed:3 40 in
  let cfg = Balance.default_config ~capacity:50 in
  let gen = Datagen.zipf (Rng.create 7) in
  for _ = 1 to 3000 do
    let k = Datagen.next gen in
    let st = Update.insert net ~from:(Net.random_peer net) k in
    ignore (Balance.maybe_balance net cfg (Net.peer net st.Update.node))
  done;
  Alcotest.(check int) "all keys present" 3000 (List.length (all_keys net));
  Check.all net

let test_skewed_load_is_spread () =
  (* Without balancing a hot region concentrates on few peers; with
     balancing the maximum load stays near the capacity bound. *)
  let run ~balance =
    let net = N.build ~seed:4 60 in
    let cfg = Balance.default_config ~capacity:80 in
    let gen = Datagen.zipf (Rng.create 11) in
    for _ = 1 to 4000 do
      let st = Update.insert net ~from:(Net.random_peer net) (Datagen.next gen) in
      if balance then ignore (Balance.maybe_balance net cfg (Net.peer net st.Update.node))
    done;
    List.fold_left (fun acc n -> max acc (Node.load n)) 0 (Net.peers net)
  in
  let unbalanced = run ~balance:false and balanced = run ~balance:true in
  Alcotest.(check bool)
    (Printf.sprintf "balanced max %d << unbalanced max %d" balanced unbalanced)
    true
    (balanced * 2 < unbalanced);
  Alcotest.(check bool) "unbalanced is heavy" true (unbalanced > 160)

let test_uniform_rarely_balances () =
  let net = N.build ~seed:5 50 in
  let cfg = Balance.default_config ~capacity:100 in
  let gen = Datagen.uniform (Rng.create 13) in
  let triggers = ref 0 in
  for _ = 1 to 2000 do
    let st = Update.insert net ~from:(Net.random_peer net) (Datagen.next gen) in
    if Balance.maybe_balance net cfg (Net.peer net st.Update.node) then incr triggers
  done;
  (* 2000 keys over 50 nodes averages 40/node; capacity 100 trips only
     where the build left an uneven range (about 1%% of inserts). *)
  Alcotest.(check bool)
    (Printf.sprintf "%d triggers" !triggers)
    true (!triggers <= 50)

let test_unsplittable_hot_key_is_left_alone () =
  let net = N.build ~seed:6 20 in
  let cfg = Balance.default_config ~capacity:10 in
  (* Narrow a node's range to width 1 is impossible to arrange directly;
     instead flood one key: the responsible node ends overloaded, and
     once its range narrows to the single key balancing refuses. *)
  for _ = 1 to 500 do
    let st = Update.insert net ~from:(Net.random_peer net) 424_242 in
    ignore (Balance.maybe_balance net cfg (Net.peer net st.Update.node))
  done;
  Check.all net;
  Alcotest.(check int) "all duplicates stored" 500
    (List.length (List.filter (fun k -> k = 424_242) (all_keys net)))

let test_recruitment_changes_membership_not_count () =
  let net = N.build ~seed:7 40 in
  let cfg = Balance.default_config ~capacity:40 in
  let gen = Datagen.zipf (Rng.create 17) in
  let n_before = Net.size net in
  for _ = 1 to 2500 do
    let st = Update.insert net ~from:(Net.random_peer net) (Datagen.next gen) in
    ignore (Balance.maybe_balance net cfg (Net.peer net st.Update.node))
  done;
  Alcotest.(check int) "peer count unchanged" n_before (Net.size net);
  Check.all net

let suite =
  [
    Alcotest.test_case "default config" `Quick test_default_config;
    Alcotest.test_case "under capacity" `Quick test_under_capacity_no_action;
    Alcotest.test_case "adjacent balancing" `Quick test_adjacent_balancing_moves_load;
    Alcotest.test_case "preserves data" `Quick test_balance_preserves_data_and_invariants;
    Alcotest.test_case "spreads skew" `Quick test_skewed_load_is_spread;
    Alcotest.test_case "uniform rarely balances" `Quick test_uniform_rarely_balances;
    Alcotest.test_case "unsplittable hot key" `Quick test_unsplittable_hot_key_is_left_alone;
    Alcotest.test_case "recruitment keeps count" `Quick test_recruitment_changes_membership_not_count;
  ]
