(* Exact-match and range queries, validated against a flat oracle. *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Search = Baton.Search
module Range = Baton.Range
module Check = Baton.Check
module Rng = Baton_util.Rng

let build_with_data ~seed ~n ~keys =
  let net = N.build ~seed n in
  let rng = Rng.create (seed + 1) in
  let inserted =
    Array.init keys (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
  in
  Array.iter (N.insert net) inserted;
  (net, inserted)

let test_exact_reaches_responsible_node () =
  let net, _ = build_with_data ~seed:1 ~n:100 ~keys:500 in
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    let v = Rng.int_in_range rng ~lo:1 ~hi:999_999_999 in
    let { Search.node; _ } = Search.exact net ~from:(Net.random_peer net) v in
    Alcotest.(check bool) "responsible node found" true (Range.contains node.Node.range v)
  done

let test_lookup_finds_inserted_keys () =
  let net, inserted = build_with_data ~seed:2 ~n:100 ~keys:500 in
  Array.iter
    (fun k ->
      let r = Search.lookup net ~from:(Net.random_peer net) k in
      Alcotest.(check bool) "present" true r.Search.found)
    inserted

let test_lookup_misses_absent_keys () =
  let net, inserted = build_with_data ~seed:3 ~n:50 ~keys:200 in
  let present k = Array.exists (fun x -> x = k) inserted in
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    let k = Rng.int_in_range rng ~lo:1 ~hi:999_999_999 in
    if not (present k) then begin
      let r = Search.lookup net ~from:(Net.random_peer net) k in
      Alcotest.(check bool) "absent" false r.Search.found
    end
  done

let test_hop_bound () =
  (* The paper: exact queries answered within O(log N); allow the 1.44
     AVL factor plus a small constant for the adjacent fallbacks. *)
  let net, inserted = build_with_data ~seed:4 ~n:400 ~keys:400 in
  let bound =
    (2. *. 1.44 *. (log (float_of_int (Net.size net)) /. log 2.)) +. 6.
  in
  Array.iter
    (fun k ->
      let { Search.hops; _ } = Search.lookup net ~from:(Net.random_peer net) k in
      Alcotest.(check bool)
        (Printf.sprintf "%d hops <= %.0f" hops bound)
        true
        (float_of_int hops <= bound))
    inserted

let test_self_query_is_free () =
  let net, _ = build_with_data ~seed:5 ~n:30 ~keys:100 in
  List.iter
    (fun (node : Node.t) ->
      let v = node.Node.range.Range.lo in
      let { Search.node = found; hops; _ } = Search.exact net ~from:node v in
      Alcotest.(check int) "stays home" node.Node.id found.Node.id;
      Alcotest.(check int) "zero hops" 0 hops)
    (Net.peers net)

let test_range_query_matches_oracle () =
  let net, inserted = build_with_data ~seed:6 ~n:80 ~keys:600 in
  let rng = Rng.create 13 in
  for _ = 1 to 100 do
    let lo = Rng.int_in_range rng ~lo:1 ~hi:999_999_999 in
    let hi = lo + Rng.int rng 80_000_000 in
    let { Search.keys; _ } = Search.range net ~from:(Net.random_peer net) ~lo ~hi in
    let expect =
      Array.to_list inserted |> List.filter (fun k -> k >= lo && k <= hi)
      |> List.sort compare
    in
    Alcotest.(check (list int)) "range answer" expect keys
  done

let test_range_cost_is_log_plus_extent () =
  let net, _ = build_with_data ~seed:7 ~n:300 ~keys:300 in
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    let lo = Rng.int_in_range rng ~lo:1 ~hi:900_000_000 in
    let hi = lo + 50_000_000 in
    let r = Search.range net ~from:(Net.random_peer net) ~lo ~hi in
    let bound =
      (2. *. 1.44 *. (log (float_of_int (Net.size net)) /. log 2.))
      +. 6.
      +. float_of_int r.Search.nodes_visited
    in
    Alcotest.(check bool) "O(log N + X)" true (float_of_int r.Search.hops <= bound)
  done

let test_range_validation () =
  let net, _ = build_with_data ~seed:8 ~n:10 ~keys:10 in
  Alcotest.check_raises "lo > hi" (Invalid_argument "Search.range: lo > hi") (fun () ->
      ignore (Search.range net ~from:(Net.random_peer net) ~lo:5 ~hi:4))

let test_values_outside_domain_route_to_edges () =
  let net, _ = build_with_data ~seed:9 ~n:50 ~keys:100 in
  let nodes = Check.in_order_nodes net in
  let leftmost = List.hd nodes in
  let rightmost = List.nth nodes (List.length nodes - 1) in
  let { Search.node = l; _ } = Search.exact net ~from:(Net.random_peer net) (-5) in
  Alcotest.(check int) "below domain -> leftmost" leftmost.Node.id l.Node.id;
  let { Search.node = r; _ } =
    Search.exact net ~from:(Net.random_peer net) 2_000_000_000
  in
  Alcotest.(check int) "above domain -> rightmost" rightmost.Node.id r.Node.id

(* Property: a random batch of searches from random origins all land on
   the responsible node, on a randomly sized network. *)
let search_prop =
  let open QCheck2 in
  Test.make ~name:"exact search always reaches the responsible node" ~count:20
    Gen.(pair (int_range 2 120) (int_range 0 1000))
    (fun (n, salt) ->
      let net = N.build ~seed:(9000 + salt) n in
      let rng = Rng.create salt in
      let ok = ref true in
      for _ = 1 to 30 do
        let v = Rng.int_in_range rng ~lo:1 ~hi:999_999_999 in
        let { Search.node; _ } = Search.exact net ~from:(Net.random_peer net) v in
        if not (Range.contains node.Node.range v) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "reaches responsible node" `Quick test_exact_reaches_responsible_node;
    Alcotest.test_case "finds inserted keys" `Quick test_lookup_finds_inserted_keys;
    Alcotest.test_case "misses absent keys" `Quick test_lookup_misses_absent_keys;
    Alcotest.test_case "hop bound" `Quick test_hop_bound;
    Alcotest.test_case "self query free" `Quick test_self_query_is_free;
    Alcotest.test_case "range matches oracle" `Quick test_range_query_matches_oracle;
    Alcotest.test_case "range cost bound" `Quick test_range_cost_is_log_plus_extent;
    Alcotest.test_case "range validation" `Quick test_range_validation;
    Alcotest.test_case "out-of-domain routing" `Quick test_values_outside_domain_route_to_edges;
    QCheck_alcotest.to_alcotest search_prop;
  ]
